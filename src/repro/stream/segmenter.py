"""Incremental message segmentation across chunk boundaries.

:class:`StreamingSegmenter` is the online counterpart of
:func:`repro.acquisition.segmentation.segment_capture`: it consumes
:class:`SampleChunk` blocks and emits exactly the per-message traces the
batch segmenter would cut out of the concatenated stream — same
boundaries, same padding, same ``start_s``, same sample values.  The
chunk-boundary equivalence tests assert this byte for byte.

The carried state is small and checkpointable:

* a rolling buffer holding the open burst (plus the padding context a
  future burst may need) — everything older is discarded;
* the open burst's start and last-dominant absolute sample indices;
* bursts that are already closed but still waiting for their trailing
  padding samples to arrive.

A burst is *definitively* closed as soon as the recessive run after its
last dominant sample exceeds the idle window: any future dominant sample
would start a new message.  That rule makes emission latency one idle
window (plus trailing padding), independent of chunk size, and keeps
memory bounded by one frame plus two idle windows.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.acquisition.adc import AdcConfig
from repro.acquisition.segmentation import SegmentationConfig
from repro.acquisition.trace import VoltageTrace
from repro.errors import StreamError
from repro.stream.chunks import SampleChunk


class StreamingSegmenter:
    """Cut per-message traces out of a chunked sample stream.

    Parameters
    ----------
    config:
        Segmentation windows; when ``None`` the same default as
        :func:`segment_capture` is derived from the first chunk (1 V
        threshold on the stream's ADC code axis).
    metadata:
        Metadata attached to every emitted message trace (the batch
        segmenter inherits it from the stream trace).
    """

    def __init__(
        self,
        config: SegmentationConfig | None = None,
        *,
        metadata: dict[str, Any] | None = None,
    ):
        self.config = config
        self.metadata = dict(metadata or {})
        self._params: tuple[float, int, float] | None = None
        self._stream_start_s = 0.0
        self._min_idle = 0
        self._min_message = 0
        self._padding = 0
        # Rolling buffer: absolute sample index of buffer[0] is _offset.
        self._buffer = np.empty(0)
        self._offset = 0
        self._total = 0          # absolute samples consumed so far
        self._next_seq = 0       # expected chunk sequence number
        # Open burst (dominant activity not yet definitively closed).
        self._burst_start: int | None = None
        self._last_dominant = 0
        # Closed bursts waiting for their trailing padding samples.
        self._pending: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, chunk: SampleChunk) -> list[VoltageTrace]:
        """Consume one chunk; return every message completed by it."""
        self._adopt_params(chunk)
        if chunk.seq != self._next_seq:
            raise StreamError(
                f"chunk {chunk.seq} arrived but chunk {self._next_seq} was "
                "expected; chunks must be contiguous and in order"
            )
        self._next_seq += 1
        samples = np.asarray(chunk.counts)
        if samples.ndim != 1:
            raise StreamError("chunk counts must be a 1-D sample vector")
        if samples.size == 0:
            return []

        base = self._total
        if self._buffer.size:
            self._buffer = np.concatenate([self._buffer, samples])
        else:
            self._buffer = samples
            self._offset = base
        self._total = base + samples.size

        config = self.config
        assert config is not None
        dominant = np.nonzero(samples >= config.threshold)[0]
        if dominant.size:
            dom = dominant + base
            gaps = np.diff(dom)
            cuts = np.nonzero(gaps > self._min_idle)[0]
            starts = np.concatenate([dom[:1], dom[cuts + 1]])
            ends = np.concatenate([dom[cuts], dom[-1:]])
            if self._burst_start is not None:
                if starts[0] - self._last_dominant > self._min_idle:
                    self._close(self._burst_start, self._last_dominant)
                else:
                    starts[0] = self._burst_start
            for s, e in zip(starts[:-1], ends[:-1]):
                self._close(int(s), int(e))
            self._burst_start = int(starts[-1])
            self._last_dominant = int(ends[-1])
        # The recessive tail may definitively close the open burst: the
        # next dominant sample (index >= _total) would open a new one.
        if (
            self._burst_start is not None
            and self._total - self._last_dominant > self._min_idle
        ):
            self._close(self._burst_start, self._last_dominant)
            self._burst_start = None

        emitted = self._flush(final=False)
        self._trim()
        return emitted

    def finish(self) -> list[VoltageTrace]:
        """Flush end-of-stream state; the stream boundary clamps padding."""
        if self._burst_start is not None:
            self._close(self._burst_start, self._last_dominant)
            self._burst_start = None
        emitted = self._flush(final=True)
        self._buffer = np.empty(0)
        self._offset = self._total
        return emitted

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Serialisable snapshot of the carried segmentation state."""
        if self._params is None:
            raise StreamError("cannot checkpoint before the first chunk")
        assert self.config is not None
        return {
            "buffer": self._buffer.copy(),
            "offset": self._offset,
            "total": self._total,
            "next_seq": self._next_seq,
            "burst_start": -1 if self._burst_start is None else self._burst_start,
            "last_dominant": self._last_dominant,
            "pending": np.asarray(self._pending, dtype=np.int64).reshape(-1, 2),
            "sample_rate": self._params[0],
            "resolution_bits": self._params[1],
            "bitrate": self._params[2],
            "stream_start_s": self._stream_start_s,
            "threshold": self.config.threshold,
            "min_idle_bits": self.config.min_idle_bits,
            "min_message_bits": self.config.min_message_bits,
            "padding_bits": self.config.padding_bits,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.config = SegmentationConfig(
            threshold=float(state["threshold"]),
            min_idle_bits=float(state["min_idle_bits"]),
            min_message_bits=float(state["min_message_bits"]),
            padding_bits=float(state["padding_bits"]),
        )
        self._params = (
            float(state["sample_rate"]),
            int(state["resolution_bits"]),
            float(state["bitrate"]),
        )
        self._stream_start_s = float(state["stream_start_s"])
        self._derive_windows()
        self._buffer = np.asarray(state["buffer"])
        self._offset = int(state["offset"])
        self._total = int(state["total"])
        self._next_seq = int(state["next_seq"])
        burst_start = int(state["burst_start"])
        self._burst_start = None if burst_start < 0 else burst_start
        self._last_dominant = int(state["last_dominant"])
        self._pending = [
            (int(s), int(e)) for s, e in np.asarray(state["pending"]).reshape(-1, 2)
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _adopt_params(self, chunk: SampleChunk) -> None:
        params = (chunk.sample_rate, chunk.resolution_bits, chunk.bitrate)
        if self._params is None:
            self._params = params
            self._stream_start_s = chunk.start_s
            if self.config is None:
                adc = AdcConfig(resolution_bits=chunk.resolution_bits)
                self.config = SegmentationConfig(threshold=adc.volts_to_counts(1.0))
            self._derive_windows()
        elif params != self._params:
            raise StreamError(
                f"chunk parameters changed mid-stream: {params} != {self._params}"
            )

    def _derive_windows(self) -> None:
        assert self.config is not None and self._params is not None
        spb = self._params[0] / self._params[2]
        self._min_idle = int(round(self.config.min_idle_bits * spb))
        self._min_message = int(round(self.config.min_message_bits * spb))
        self._padding = int(round(self.config.padding_bits * spb))

    def _close(self, start: int, end: int) -> None:
        if end - start < self._min_message:
            return  # glitch / partial frame, same rule as the batch cut
        self._pending.append((start, end))

    def _flush(self, *, final: bool) -> list[VoltageTrace]:
        emitted: list[VoltageTrace] = []
        while self._pending:
            start, end = self._pending[0]
            hi = end + self._padding + 1
            if hi > self._total:
                if not final:
                    break
                hi = self._total
            self._pending.pop(0)
            lo = max(0, start - self._padding)
            counts = self._buffer[lo - self._offset : hi - self._offset]
            sample_rate, resolution_bits, bitrate = self._params  # type: ignore[misc]
            emitted.append(
                VoltageTrace(
                    counts=counts.copy(),
                    sample_rate=sample_rate,
                    resolution_bits=resolution_bits,
                    bitrate=bitrate,
                    start_s=self._stream_start_s + lo / sample_rate,
                    metadata=dict(self.metadata),
                )
            )
        return emitted

    def _trim(self) -> None:
        """Drop buffer samples nothing can reference any more."""
        keep_from = self._total - self._padding
        if self._burst_start is not None:
            keep_from = min(keep_from, self._burst_start - self._padding)
        for start, _ in self._pending:
            keep_from = min(keep_from, start - self._padding)
        keep_from = max(keep_from, self._offset, 0)
        if keep_from > self._offset:
            self._buffer = self._buffer[keep_from - self._offset :]
            self._offset = keep_from
