"""Incremental edge-set extraction over a chunked stream.

:class:`StreamingExtractor` stacks Algorithm 1 on top of the
:class:`StreamingSegmenter`: chunks go in, and every time the recessive
gap after a frame confirms the message is complete, the frame's edge set
comes out — with the bus time of the message attached so downstream
alerting can reference when, not just what.

Equivalence contract: for any chunking of a capture, the emitted edge
sets are byte-identical to running the batch path
(``segment_capture`` then ``extract_many(..., skip_failures=True)``)
over the whole stream, including the derived-default extraction config
(taken from the first segmented message, exactly like the batch helper
derives it from its first trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.acquisition.segmentation import SegmentationConfig
from repro.core.edge_extraction import (
    ExtractedEdgeSet,
    ExtractionConfig,
    extract_edge_set,
)
from repro.errors import ExtractionError, StreamError
from repro.stream.chunks import SampleChunk
from repro.stream.segmenter import StreamingSegmenter


@dataclass(frozen=True)
class StreamMessage:
    """One fully-extracted message from the stream.

    Attributes
    ----------
    edge_set:
        Algorithm 1's output for the message.
    start_s:
        Bus time of the message trace's first (padded) sample.
    index:
        Position of the message in the stream (0-based, counts only
        successfully extracted messages).
    """

    edge_set: ExtractedEdgeSet
    start_s: float
    index: int


@dataclass
class ExtractorStats:
    """Counters accumulated by one extractor instance."""

    chunks: int = 0
    samples: int = 0
    messages: int = 0
    extraction_failures: int = 0


class StreamingExtractor:
    """Chunks in, edge sets out, with state carried across boundaries.

    Parameters
    ----------
    extraction:
        Algorithm 1 constants; derived from the first segmented message
        when ``None`` (matching :func:`extract_many`'s default).
    segmentation:
        Message-boundary windows; batch-equivalent default when ``None``.
    skip_failures:
        Drop unextractable messages (counted in ``stats``) instead of
        raising — a live runtime must survive a glitchy frame.
    metadata:
        Inherited by every segmented message trace.
    """

    def __init__(
        self,
        extraction: ExtractionConfig | None = None,
        segmentation: SegmentationConfig | None = None,
        *,
        skip_failures: bool = True,
        metadata: dict[str, Any] | None = None,
    ):
        self.extraction = extraction
        self.skip_failures = skip_failures
        self.segmenter = StreamingSegmenter(segmentation, metadata=metadata)
        self.stats = ExtractorStats()

    def push(self, chunk: SampleChunk) -> list[StreamMessage]:
        """Consume one chunk; return the messages it completed."""
        self.stats.chunks += 1
        self.stats.samples += len(chunk)
        return self._extract(self.segmenter.push(chunk))

    def finish(self) -> list[StreamMessage]:
        """Flush the end-of-stream remainder."""
        return self._extract(self.segmenter.finish())

    def _extract(self, traces: list[VoltageTrace]) -> list[StreamMessage]:
        messages: list[StreamMessage] = []
        for trace in traces:
            if self.extraction is None:
                self.extraction = ExtractionConfig.for_trace(trace)
            try:
                edge_set = extract_edge_set(trace, self.extraction)
            except ExtractionError:
                if not self.skip_failures:
                    raise
                self.stats.extraction_failures += 1
                continue
            messages.append(
                StreamMessage(
                    edge_set=edge_set,
                    start_s=trace.start_s,
                    index=self.stats.messages,
                )
            )
            self.stats.messages += 1
        return messages

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Snapshot: segmenter state plus the extractor counters."""
        state = self.segmenter.state_dict()
        state["stats"] = (
            self.stats.chunks,
            self.stats.samples,
            self.stats.messages,
            self.stats.extraction_failures,
        )
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        if "stats" not in state:
            raise StreamError("extractor state is missing its counters")
        self.segmenter.load_state(state)
        chunks, samples, messages, failures = (int(v) for v in state["stats"])
        self.stats = ExtractorStats(
            chunks=chunks,
            samples=samples,
            messages=messages,
            extraction_failures=failures,
        )
