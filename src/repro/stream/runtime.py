"""The streaming supervisor: chunks in, ordered verdicts and alerts out.

:class:`StreamRuntime` glues the subsystem together around a trained
:class:`VProfilePipeline`:

* the **ingestion stage** pulls chunks from a :class:`ChunkSource` and
  feeds the incremental extractor;
* extracted messages are sharded by source address onto the
  :class:`ShardedWorkerPool`'s bounded queues — when a queue fills, the
  configured overflow policy (block / drop-newest / drop-oldest)
  decides between backpressure and loss;
* workers classify in vectorised batches; OK verdicts optionally fold
  back into the *shared* profile store through the pipeline's Algorithm
  4 updater, so drift adaptation learned on the stream is visible to
  every other consumer of the model;
* the supervisor checkpoints at quiesced chunk boundaries, restores
  from a checkpoint, reorders verdicts by stream sequence, and reports
  per-stage metrics through :mod:`repro.obs`.

An optional hijack injector rewrites source addresses in flight with a
seeded probability — the streaming twin of the paper's replay-and-
rewrite attack methodology, used by the CLI to demonstrate alerts.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.detection import AnomalyReason
from repro.errors import StreamError
from repro.ids.alerts import Alert, AlertLog
from repro.obs.clock import monotonic
from repro.obs.events import get_event_log
from repro.obs.registry import MetricsRegistry, get_registry
from repro.stream.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.stream.chunks import ChunkSource
from repro.stream.extractor import StreamingExtractor, StreamMessage
from repro.stream.queues import OverflowPolicy
from repro.stream.telemetry import StreamTelemetry, TelemetryConfig
from repro.stream.workers import ShardedWorkerPool, StreamVerdict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import VProfilePipeline

#: Chunks ingested by the runtime.
CHUNKS_METRIC = "vprofile_stream_chunks_total"
#: Samples ingested by the runtime.
SAMPLES_METRIC = "vprofile_stream_samples_total"
#: Messages that could not be extracted from the stream.
EXTRACTION_FAILURES_METRIC = "vprofile_stream_extraction_failures_total"


@dataclass
class StreamConfig:
    """Knobs of the streaming runtime.

    Attributes
    ----------
    n_workers:
        Classification workers (= shard count).
    queue_capacity / policy:
        Per-shard queue bound and overflow behaviour under load.
    batch_size:
        Feature vectors classified per vectorised detector call.
    checkpoint_dir:
        Where to write checkpoints; ``None`` disables checkpointing.
    checkpoint_every_chunks:
        Take a checkpoint after every N ingested chunks (0: only the
        final checkpoint when ``checkpoint_dir`` is set).
    hijack_probability / hijack_seed:
        In-flight SA-rewrite attack injection (0 disables).
    telemetry:
        Longitudinal telemetry: a :class:`TelemetryConfig` (the runtime
        builds the :class:`StreamTelemetry` from the pipeline's model
        at run start) or a pre-built :class:`StreamTelemetry` (when the
        caller needs the component handles up front, e.g. to serve
        ``/health`` while the run is live).  ``None`` disables it.
    """

    n_workers: int = 1
    queue_capacity: int = 256
    policy: OverflowPolicy | str = OverflowPolicy.BLOCK
    batch_size: int = 8
    checkpoint_dir: str | Path | None = None
    checkpoint_every_chunks: int = 0
    hijack_probability: float = 0.0
    hijack_seed: int = 0
    telemetry: TelemetryConfig | StreamTelemetry | None = None


@dataclass
class StreamReport:
    """What one streaming run saw and decided.

    ``verdicts`` is ordered by stream sequence number regardless of
    which worker classified each message, so two runs over the same
    source are comparable element by element.
    """

    chunks: int = 0
    samples: int = 0
    messages: int = 0
    anomalies: int = 0
    reasons: Counter = field(default_factory=Counter)
    dropped: int = 0
    updated: int = 0
    extraction_failures: int = 0
    injected_attacks: list[int] = field(default_factory=list)
    wall_s: float = 0.0
    verdicts: list[StreamVerdict] = field(default_factory=list)
    alerts: AlertLog = field(default_factory=AlertLog)
    checkpoints: int = 0
    telemetry: StreamTelemetry | None = None
    bundles: list[Path] = field(default_factory=list)

    @property
    def frames_per_s(self) -> float:
        """End-to-end classified-message throughput."""
        if self.wall_s <= 0:
            return 0.0
        return self.messages / self.wall_s


class StreamRuntime:
    """Supervise one streaming detection run over a chunk source."""

    def __init__(self, pipeline: "VProfilePipeline", config: StreamConfig | None = None):
        self.pipeline = pipeline
        self.config = config or StreamConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        source: ChunkSource,
        *,
        resume: Checkpoint | str | Path | None = None,
    ) -> StreamReport:
        """Consume ``source`` to exhaustion and return the run report.

        With ``resume`` (a :class:`Checkpoint` or a checkpoint
        directory), ingestion restarts at the checkpointed chunk with
        the checkpointed profile store and extractor state: the verdict
        sequence continues exactly where the interrupted run stopped.
        """
        config = self.config
        pipeline = self.pipeline
        checkpoint: Checkpoint | None = None
        if resume is not None:
            checkpoint = (
                resume if isinstance(resume, Checkpoint) else load_checkpoint(resume)
            )
            pipeline.load_model(checkpoint.model, checkpoint.extraction)

        if not pipeline.is_trained:
            raise StreamError("the pipeline must be trained (or resumed) to stream")

        extractor = StreamingExtractor(
            pipeline.extraction, metadata=dict(source.metadata)
        )
        start_chunk = 0
        seq = 0
        if checkpoint is not None:
            if checkpoint.extractor_state is not None:
                extractor.load_state(checkpoint.extractor_state)
                extractor.extraction = checkpoint.extraction
            start_chunk = checkpoint.next_chunk
            seq = checkpoint.next_seq

        registry = get_registry()
        events = get_event_log()
        report = StreamReport()
        results: list[StreamVerdict] = []
        results_lock = threading.Lock()

        telemetry: StreamTelemetry | None = None
        if config.telemetry is not None:
            if isinstance(config.telemetry, StreamTelemetry):
                telemetry = config.telemetry
            else:
                model = pipeline.model
                assert model is not None  # is_trained checked above
                telemetry = StreamTelemetry(
                    config.telemetry,
                    model=model,
                    margin=pipeline.config.margin,
                    n_shards=config.n_workers,
                )
            telemetry.attach_updater(pipeline.updater)
        report.telemetry = telemetry

        def collect(verdict: StreamVerdict) -> None:
            if telemetry is not None:
                telemetry.on_verdict(verdict)
            with results_lock:
                results.append(verdict)

        pool = ShardedWorkerPool(
            pipeline.detector,
            config.n_workers,
            queue_capacity=config.queue_capacity,
            policy=config.policy,
            batch_size=config.batch_size,
            updater=pipeline.updater,
            on_result=collect,
            recorder=telemetry.recorder if telemetry is not None else None,
        )
        events.info(
            "stream.started",
            workers=config.n_workers,
            policy=OverflowPolicy(config.policy).value,
            queue_capacity=config.queue_capacity,
            batch_size=config.batch_size,
            start_chunk=start_chunk,
            resumed=checkpoint is not None,
        )

        t0 = monotonic()
        try:
            for chunk in source.chunks(start_chunk):
                report.chunks += 1
                report.samples += len(chunk)
                if registry.enabled:
                    registry.counter(
                        CHUNKS_METRIC, help="Chunks ingested by the stream runtime"
                    ).inc()
                    registry.counter(
                        SAMPLES_METRIC, help="Samples ingested by the stream runtime"
                    ).inc(len(chunk))
                seq = self._submit_all(
                    pool, extractor.push(chunk), seq, report
                )
                if telemetry is not None:
                    telemetry.on_chunk()
                if (
                    config.checkpoint_dir is not None
                    and config.checkpoint_every_chunks > 0
                    and (chunk.seq + 1) % config.checkpoint_every_chunks == 0
                ):
                    pool.drain()
                    self._checkpoint(extractor, chunk.seq + 1, seq)
                    report.checkpoints += 1
                    events.info(
                        "stream.checkpoint",
                        next_chunk=chunk.seq + 1,
                        next_seq=seq,
                        path=str(config.checkpoint_dir),
                    )
            seq = self._submit_all(pool, extractor.finish(), seq, report)
            if self.config.checkpoint_dir is not None and report.chunks:
                pool.drain()
                self._checkpoint(extractor, start_chunk + report.chunks, seq)
                report.checkpoints += 1
        finally:
            pool.close()
        if telemetry is not None:
            report.bundles = telemetry.finish()
        report.wall_s = monotonic() - t0

        results.sort(key=lambda v: v.seq)
        report.verdicts = results
        report.messages = len(results)
        report.dropped = pool.dropped
        report.updated = pool.updated
        report.extraction_failures = extractor.stats.extraction_failures
        if registry.enabled and report.extraction_failures:
            registry.counter(
                EXTRACTION_FAILURES_METRIC,
                help="Messages the incremental extractor could not decode",
            ).inc(report.extraction_failures)
        for verdict in results:
            if not verdict.is_anomaly:
                continue
            report.anomalies += 1
            reason = verdict.result.reason
            reason_name = reason.value if reason else "unknown"
            report.reasons[reason_name] += 1
            report.alerts.record(
                Alert(
                    timestamp_s=verdict.message.start_s,
                    detector="stream-voltage",
                    can_id=verdict.result.source_address,
                    reason=reason_name,
                    detail=(
                        f"seq {verdict.seq}: SA "
                        f"0x{verdict.result.source_address:02X} via worker "
                        f"{verdict.worker}"
                    ),
                )
            )
        self._mirror_into_pipeline(report, registry)

        events.info(
            "stream.finished",
            chunks=report.chunks,
            messages=report.messages,
            anomalies=report.anomalies,
            dropped=report.dropped,
            updated=report.updated,
            wall_s=report.wall_s,
            frames_per_s=report.frames_per_s,
        )
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _submit_all(
        self,
        pool: ShardedWorkerPool,
        messages: list[StreamMessage],
        seq: int,
        report: StreamReport,
    ) -> int:
        probability = self.config.hijack_probability
        for message in messages:
            if probability > 0:
                # Seed per sequence number, not from a shared stream:
                # a resumed run must inject exactly the attacks the
                # uninterrupted run would have injected at each seq.
                rng = np.random.default_rng([self.config.hijack_seed, seq])
                if rng.random() < probability:
                    rewritten = self._hijack(message, rng)
                    if rewritten is not None:
                        message = rewritten
                        report.injected_attacks.append(seq)
            pool.submit(seq, message)
            seq += 1
        return seq

    def _hijack(
        self, message: StreamMessage, rng: np.random.Generator
    ) -> StreamMessage | None:
        """Rewrite the claimed SA to one from a *different* cluster."""
        from dataclasses import replace

        model = self.pipeline.model
        assert model is not None
        true_sa = message.edge_set.source_address
        own_cluster = model.sa_to_cluster.get(true_sa)
        candidates = [
            sa
            for sa, cluster in model.sa_to_cluster.items()
            if cluster != own_cluster
        ]
        if not candidates:
            return None
        forged = int(candidates[int(rng.integers(len(candidates)))])
        return StreamMessage(
            edge_set=replace(message.edge_set, source_address=forged),
            start_s=message.start_s,
            index=message.index,
        )

    def _checkpoint(
        self, extractor: StreamingExtractor, next_chunk: int, next_seq: int
    ) -> None:
        assert self.config.checkpoint_dir is not None
        model = self.pipeline.model
        if model is None:
            raise StreamError("cannot checkpoint an untrained pipeline")
        save_checkpoint(
            self.config.checkpoint_dir,
            model=model,
            extraction=extractor.extraction,
            extractor_state=extractor.state_dict(),
            next_chunk=next_chunk,
            next_seq=next_seq,
            margin=self.pipeline.config.margin,
        )

    def _mirror_into_pipeline(
        self, report: StreamReport, registry: MetricsRegistry
    ) -> None:
        """Fold the run's counters into the shared pipeline stats.

        The worker path bypasses ``VProfilePipeline.process``, so the
        shared counters (and their metric twins) are reconciled here —
        one bulk update per run, not one per message.
        """
        stats = self.pipeline.stats
        stats.processed += report.messages
        stats.anomalies += report.anomalies
        stats.reasons.update(report.reasons)
        stats.updated += report.updated
        if not registry.enabled:
            return
        registry.counter(
            "vprofile_messages_total", help="Messages classified by the detector"
        ).inc(report.messages)
        for reason in AnomalyReason:
            count = report.reasons.get(reason.value, 0)
            if count:
                registry.counter(
                    "vprofile_anomalies_total", reason=reason.value
                ).inc(count)
        if report.updated:
            registry.counter(
                "vprofile_online_updates_total",
                help="Edge sets folded into the model by Algorithm 4",
            ).inc(report.updated)
