"""Chunked sample ingestion: the front door of the streaming runtime.

A live voltage IDS never sees a whole capture at once — the digitizer
hands over fixed-size blocks of ADC samples and the detector must keep
up.  This module defines the :class:`SampleChunk` unit of ingestion, the
:class:`ChunkSource` protocol the runtime consumes, and two adapters:

* :class:`ReplaySource` — re-chunk a continuous capture (or a saved
  trace archive) so recorded sessions can be replayed through the
  streaming path, exactly like the paper replays its truck captures;
* :class:`LiveSource` — a simulated digitizer hanging off a synthetic
  vehicle's bus: frames are synthesised lazily, placed at their bus
  times, and the idle gaps are filled with the recessive level, so
  memory stays bounded no matter how long the session runs.

Sources are restartable: ``chunks(start_chunk=k)`` re-iterates from
chunk ``k``, which is what checkpoint/resume builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.acquisition.adc import AdcConfig
from repro.acquisition.archive import PathOrFile, load_traces
from repro.acquisition.segmentation import assemble_stream
from repro.acquisition.trace import VoltageTrace
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.can.bus import CanBus
from repro.can.traffic import TrafficGenerator
from repro.errors import StreamError
from repro.vehicles.profiles import DEFAULT_TRUNCATE_BITS, VehicleConfig

#: Default ingestion unit: 4096 samples ≈ 102 bus bits at the paper's
#: 10 MS/s / 250 kb/s reference point — a little under one frame.
DEFAULT_CHUNK_SAMPLES = 4096


@dataclass(frozen=True)
class SampleChunk:
    """One block of contiguous digitizer samples.

    Attributes
    ----------
    counts:
        ADC codes, offset binary, 1-D.
    seq:
        Position of this chunk in the stream (0-based, contiguous).
    start_s:
        Bus time of the first sample.
    sample_rate / resolution_bits / bitrate:
        Capture parameters, constant across one stream.
    """

    counts: np.ndarray
    seq: int
    start_s: float
    sample_rate: float
    resolution_bits: int
    bitrate: float

    def __len__(self) -> int:
        return int(self.counts.size)


@runtime_checkable
class ChunkSource(Protocol):
    """Anything the streaming runtime can ingest from.

    Implementations expose the stream's capture parameters and a
    restartable chunk iterator; ``metadata`` is inherited by every
    message the extractor cuts out of the stream.
    """

    sample_rate: float
    resolution_bits: int
    bitrate: float
    metadata: dict[str, Any]

    def chunks(self, start_chunk: int = 0) -> Iterator[SampleChunk]:
        """Iterate chunks in order, starting at chunk ``start_chunk``."""
        ...


@dataclass
class ReplaySource:
    """Replay a continuous capture as a chunk stream.

    The replay adapter is the bridge between the batch world (archives,
    :func:`segment_capture`) and the streaming runtime: the same samples
    flow through either path, which is what the chunk-boundary
    equivalence tests pin down.
    """

    stream: VoltageTrace
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_samples < 1:
            raise StreamError(f"chunk_samples must be >= 1, got {self.chunk_samples}")
        if not self.metadata:
            self.metadata = dict(self.stream.metadata)

    @property
    def sample_rate(self) -> float:
        return self.stream.sample_rate

    @property
    def resolution_bits(self) -> int:
        return self.stream.resolution_bits

    @property
    def bitrate(self) -> float:
        return self.stream.bitrate

    @property
    def n_chunks(self) -> int:
        return -(-len(self.stream) // self.chunk_samples)

    @classmethod
    def from_traces(
        cls,
        traces: list[VoltageTrace],
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    ) -> "ReplaySource":
        """Assemble per-message traces into one stream and replay it."""
        return cls(assemble_stream(traces), chunk_samples)

    @classmethod
    def from_archive(
        cls, path: PathOrFile, chunk_samples: int = DEFAULT_CHUNK_SAMPLES
    ) -> "ReplaySource":
        """Replay a saved ``.npz`` trace archive (path or binary file)."""
        return cls.from_traces(load_traces(path), chunk_samples)

    def chunks(self, start_chunk: int = 0) -> Iterator[SampleChunk]:
        samples = self.stream.counts
        size = self.chunk_samples
        for seq in range(start_chunk, self.n_chunks):
            lo = seq * size
            yield SampleChunk(
                counts=samples[lo : lo + size],
                seq=seq,
                start_s=self.stream.start_s + lo / self.sample_rate,
                sample_rate=self.sample_rate,
                resolution_bits=self.resolution_bits,
                bitrate=self.bitrate,
            )


@dataclass
class LiveSource:
    """A simulated digitizer attached to a synthetic vehicle's bus.

    Traffic is scheduled through the shared :class:`CanBus`, each frame
    is rendered through its sender's transceiver and the vehicle's
    capture chain *on demand*, and the inter-frame gaps are filled with
    the recessive idle level — the source never materialises more than
    one pending frame plus one chunk of samples.

    ``jobs`` switches frame rendering to the :mod:`repro.perf` engine:
    all traces are pre-rendered (batched per sender, fanned out over
    workers with per-message seeding) before chunk assembly starts.
    That trades the lazy path's bounded memory for throughput, and —
    like the engine everywhere else — draws per-message seeds, so the
    sample stream differs from the lazy path's shared-generator stream
    but is itself reproducible for any job count.
    """

    vehicle: VehicleConfig
    duration_s: float
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES
    seed: int = 0
    env: Environment = NOMINAL_ENVIRONMENT
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS
    metadata: dict[str, Any] = field(default_factory=dict)
    jobs: int | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise StreamError(f"duration must be positive, got {self.duration_s}")
        if self.chunk_samples < 1:
            raise StreamError(f"chunk_samples must be >= 1, got {self.chunk_samples}")
        if not self.metadata:
            self.metadata = {"vehicle": self.vehicle.name, "source": "live"}

    @property
    def sample_rate(self) -> float:
        return self.vehicle.sample_rate

    @property
    def resolution_bits(self) -> int:
        return self.vehicle.resolution_bits

    @property
    def bitrate(self) -> float:
        return self.vehicle.bitrate

    def chunks(self, start_chunk: int = 0) -> Iterator[SampleChunk]:
        """Synthesise the session and emit it chunk by chunk.

        Resume (``start_chunk > 0``) replays the deterministic
        simulation and discards the leading chunks: the sample stream is
        identical to the uninterrupted run because every random draw
        (payloads, jitter, channel noise) is seeded.
        """
        vehicle = self.vehicle
        fs = vehicle.sample_rate
        rng = np.random.default_rng(self.seed)
        generator = TrafficGenerator(
            schedules=[
                (ecu.name, schedule)
                for ecu in vehicle.ecus
                for schedule in ecu.schedules
            ],
            seed=self.seed,
        )
        bus = CanBus(bitrate=vehicle.bitrate)
        transmissions = bus.schedule(generator.frames_until(self.duration_s))
        chain = vehicle.capture_chain(self.truncate_bits)
        transceivers = {ecu.name: ecu.transceiver for ecu in vehicle.ecus}

        prerendered: list[VoltageTrace] | None = None
        if self.jobs is not None:
            from repro.perf.engine import render_transmissions

            prerendered = render_transmissions(
                vehicle,
                transmissions,
                env=self.env,
                seed=self.seed,
                truncate_bits=self.truncate_bits,
                jobs=self.jobs,
            )

        idle_code = int(round(AdcConfig(
            resolution_bits=vehicle.resolution_bits
        ).volts_to_counts(0.0)))
        total_samples = int(round(self.duration_s * fs))

        pending: list[np.ndarray] = []
        buffered = 0
        cursor = 0  # absolute index of the next sample to synthesise
        emitted_chunks = 0
        dtype = np.int32

        def flush() -> Iterator[SampleChunk]:
            nonlocal pending, buffered, emitted_chunks
            while buffered >= self.chunk_samples:
                block = np.concatenate(pending) if len(pending) > 1 else pending[0]
                counts = block[: self.chunk_samples]
                rest = block[self.chunk_samples :]
                pending = [rest] if rest.size else []
                buffered = int(rest.size)
                seq = emitted_chunks
                emitted_chunks += 1
                if seq >= start_chunk:
                    yield SampleChunk(
                        counts=counts,
                        seq=seq,
                        start_s=seq * self.chunk_samples / fs,
                        sample_rate=fs,
                        resolution_bits=vehicle.resolution_bits,
                        bitrate=vehicle.bitrate,
                    )

        for tx_index, tx in enumerate(transmissions):
            if prerendered is not None:
                trace = prerendered[tx_index]
            else:
                trace = chain.capture_frame(
                    tx.frame,
                    transceivers[tx.sender],
                    env=self.env,
                    rng=rng,
                    start_s=tx.start_s,
                )
            index = max(int(round(tx.start_s * fs)), cursor)
            if index >= total_samples:
                break
            dtype = trace.counts.dtype
            if index > cursor:
                pending.append(np.full(index - cursor, idle_code, dtype=dtype))
                buffered += index - cursor
            counts = trace.counts
            if index + counts.size > total_samples:
                counts = counts[: total_samples - index]
            pending.append(counts)
            buffered += counts.size
            cursor = index + counts.size
            yield from flush()

        if cursor < total_samples:
            pending.append(np.full(total_samples - cursor, idle_code, dtype=dtype))
            buffered += total_samples - cursor
            cursor = total_samples
        yield from flush()
        if buffered:  # final partial chunk
            block = np.concatenate(pending) if len(pending) > 1 else pending[0]
            seq = emitted_chunks
            if seq >= start_chunk:
                yield SampleChunk(
                    counts=block,
                    seq=seq,
                    start_s=seq * self.chunk_samples / fs,
                    sample_rate=fs,
                    resolution_bits=vehicle.resolution_bits,
                    bitrate=vehicle.bitrate,
                )
