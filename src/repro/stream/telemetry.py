"""Longitudinal telemetry bundle for the streaming runtime.

:class:`StreamTelemetry` wires the three ``repro.obs`` longitudinal
components into one object the runtime can drive:

* a :class:`~repro.obs.timeseries.TimeSeriesStore` sampled once per
  ingested chunk (rate-limited by its own interval);
* a :class:`~repro.obs.health.ProfileHealthMonitor` fed every verdict
  and every Algorithm-4 update decision;
* an optional :class:`~repro.obs.recorder.FlightRecorder` (enabled by
  setting ``flight_dir``) that dumps forensics bundles on alert.

The aggregator itself holds no locks: each component is internally
thread-safe, and the aggregator only ever delegates.  ``on_verdict`` is
invoked from worker threads; ``on_chunk`` and ``finish`` from the
supervisor thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.model import VProfileModel
from repro.core.online_update import OnlineUpdater
from repro.obs.health import HealthConfig, ProfileHealthMonitor
from repro.obs.recorder import FlightRecorder
from repro.obs.timeseries import TimeSeriesStore
from repro.stream.workers import StreamVerdict


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the streaming telemetry layer.

    Attributes
    ----------
    timeseries_capacity / timeseries_interval_s / timeseries_downsample:
        Ring size, sampling interval and coarse-aggregation factor of
        the time-series store (capacity 0 disables the store).
    health:
        Profile-health thresholds; ``None`` uses the defaults.
    flight_dir:
        Directory for forensics bundles; ``None`` disables the flight
        recorder.
    recorder_capacity / post_alert / max_bundles:
        Per-shard ring size, post-alert context length, and bundle cap
        of the flight recorder.
    """

    timeseries_capacity: int = 512
    timeseries_interval_s: float = 0.25
    timeseries_downsample: int = 8
    health: HealthConfig | None = None
    flight_dir: str | Path | None = None
    recorder_capacity: int = 128
    post_alert: int = 16
    max_bundles: int = 8


class StreamTelemetry:
    """Time-series + health + flight recorder, driven by the runtime."""

    def __init__(
        self,
        config: TelemetryConfig,
        *,
        model: VProfileModel,
        margin: float = 0.0,
        n_shards: int = 1,
    ) -> None:
        self.config = config
        self.timeseries: TimeSeriesStore | None = None
        if config.timeseries_capacity > 0:
            self.timeseries = TimeSeriesStore(
                capacity=config.timeseries_capacity,
                interval_s=config.timeseries_interval_s,
                downsample=config.timeseries_downsample,
            )
        self.health: ProfileHealthMonitor = ProfileHealthMonitor(
            model, config.health
        )
        self.recorder: FlightRecorder | None = None
        if config.flight_dir is not None:
            self.recorder = FlightRecorder(
                config.flight_dir,
                n_shards=n_shards,
                capacity=config.recorder_capacity,
                post_alert=config.post_alert,
                max_bundles=config.max_bundles,
                model=model,
                margin=margin,
            )
        self.bundles: list[Path] = []

    # ------------------------------------------------------------------
    # Hooks driven by the runtime
    # ------------------------------------------------------------------
    def attach_updater(self, updater: OnlineUpdater | None) -> None:
        """Route Algorithm-4 accept/reject decisions into the monitor."""
        if updater is not None:
            updater.observer = self.health.record_update

    def on_chunk(self) -> None:
        """Supervisor hook: advance telemetry once per ingested chunk.

        Health gauges are exported *before* the time-series store
        samples, so each snapshot carries the freshest per-SA health;
        both ride the store's rate limit (at most one assessment sweep
        per sampling interval), keeping the per-chunk cost flat.
        """
        if self.timeseries is None:
            self.health.export()
            return
        if self.timeseries.due():
            self.health.export()
            self.timeseries.sample()

    def on_verdict(self, verdict: StreamVerdict) -> None:
        """Worker hook: feed one classified message into the monitor."""
        self.health.record_verdict(
            verdict.result.source_address, verdict.result.is_anomaly
        )

    def finish(self) -> list[Path]:
        """End of run: flush pending dumps, final sample, export gauges."""
        if self.recorder is not None:
            self.bundles = list(self.recorder.bundle_paths)
            for path in self.recorder.finish():
                self.bundles.append(path)
        if self.timeseries is not None:
            self.timeseries.sample()
            self.timeseries.flush()
        self.health.export()
        return self.bundles


__all__ = ["StreamTelemetry", "TelemetryConfig"]
