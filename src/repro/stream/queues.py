"""Bounded queues with explicit backpressure policies.

A streaming IDS that cannot keep up has to choose what to sacrifice:
latency (block the producer — fine for replay, fatal for a live tap),
the newest data, or the oldest.  :class:`BoundedQueue` makes that choice
explicit per queue instead of burying it in an unbounded buffer that
slowly eats the process.

The queue keeps its own counters (puts, gets, drops, high watermark) so
the runtime can export per-shard gauges without reaching into deque
internals.
"""

from __future__ import annotations

import threading
from collections import deque
from enum import Enum
from typing import Callable, Generic, TypeVar

from repro.errors import StreamError

T = TypeVar("T")


class OverflowPolicy(str, Enum):
    """What a full queue does with the next item."""

    BLOCK = "block"             # producer waits: lossless, adds latency
    DROP_NEWEST = "drop-newest"  # reject the incoming item
    DROP_OLDEST = "drop-oldest"  # evict the head to make room


class QueueClosed(StreamError):
    """Raised by :meth:`BoundedQueue.get_batch` after close + drain."""


class BoundedQueue(Generic[T]):
    """A thread-safe FIFO with a hard capacity and an overflow policy."""

    def __init__(
        self,
        capacity: int,
        policy: OverflowPolicy | str = OverflowPolicy.BLOCK,
        name: str = "",
    ):
        if capacity < 1:
            raise StreamError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = OverflowPolicy(policy)
        self.name = name
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.puts = 0
        self.gets = 0
        self.dropped = 0
        self.high_watermark = 0

    # ------------------------------------------------------------------
    def put(self, item: T) -> bool:
        """Enqueue ``item``; returns False when the policy dropped it.

        Under ``BLOCK`` the call waits for space (or for the queue to be
        closed, which raises).  Under the drop policies it never waits.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed(f"queue {self.name!r} is closed")
            if len(self._items) >= self.capacity:
                if self.policy is OverflowPolicy.BLOCK:
                    while len(self._items) >= self.capacity and not self._closed:
                        self._not_full.wait()
                    if self._closed:
                        raise QueueClosed(f"queue {self.name!r} is closed")
                elif self.policy is OverflowPolicy.DROP_NEWEST:
                    self.dropped += 1
                    return False
                else:  # DROP_OLDEST
                    self._items.popleft()
                    self.dropped += 1
            self._items.append(item)
            self.puts += 1
            if len(self._items) > self.high_watermark:
                self.high_watermark = len(self._items)
            self._not_empty.notify()
            return True

    def get_batch(
        self,
        max_items: int,
        timeout: float | None = None,
        on_batch: Callable[[int], None] | None = None,
    ) -> list[T]:
        """Dequeue 1..``max_items`` items, waiting for the first.

        Blocks until at least one item is available, then drains up to
        ``max_items`` without waiting further — the natural shape for a
        worker that classifies in vectorised batches.  Raises
        :class:`QueueClosed` once the queue is closed *and* empty;
        returns ``[]`` only on timeout.

        ``on_batch(n)``, when given, runs under the queue lock just
        before the batch is returned — consumers use it to publish an
        in-flight count atomically with the dequeue, so an observer
        never sees items vanish from the queue without appearing as
        in-flight work.
        """
        if max_items < 1:
            raise StreamError(f"max_items must be >= 1, got {max_items}")
        with self._lock:
            while not self._items:
                if self._closed:
                    raise QueueClosed(f"queue {self.name!r} is closed")
                if not self._not_empty.wait(timeout):
                    return []
            batch: list[T] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            self.gets += len(batch)
            if on_batch is not None:
                on_batch(len(batch))
            self._not_full.notify(len(batch))
            return batch

    def close(self) -> None:
        """Mark end-of-stream; wakes every waiting producer/consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
