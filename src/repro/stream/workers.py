"""Sharded classification workers with per-shard bounded queues.

Frames are sharded by sender identity (J1939 source address) onto one
bounded queue per worker, so every message from a given ECU is judged by
the same worker — per-cluster work stays cache-warm and online updates
for one cluster never race between workers.  Each worker drains its
queue in batches and classifies the whole batch with the vectorised
detector path, which is where the streaming runtime's throughput
headroom comes from.

The pool never reorders verdicts within a shard; cross-shard ordering is
restored by the supervisor (results carry their stream sequence number).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.detection import (
    AnomalyReason,
    BatchDetection,
    DetectionResult,
    Detector,
    Verdict,
)
from repro.core.online_update import OnlineUpdater
from repro.errors import StreamError
from repro.obs.clock import monotonic
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import get_registry
from repro.stream.extractor import StreamMessage
from repro.stream.queues import BoundedQueue, OverflowPolicy, QueueClosed

#: Per-shard queue depth (set on every put/get when metrics are on).
QUEUE_DEPTH_METRIC = "vprofile_stream_queue_depth"
#: Messages dropped by queue overflow policies.
DROPPED_METRIC = "vprofile_stream_dropped_total"
#: Ingest-to-verdict latency of one message through the runtime.
LATENCY_METRIC = "vprofile_stream_latency_seconds"


@dataclass(frozen=True)
class StreamVerdict:
    """One classified message, tagged with its stream position."""

    seq: int
    message: StreamMessage
    result: DetectionResult
    worker: int

    @property
    def is_anomaly(self) -> bool:
        return self.result.is_anomaly


def result_from_batch(
    detection: BatchDetection, row: int, sa: int, margin: float
) -> DetectionResult:
    """Rebuild the single-message :class:`DetectionResult` shape.

    Mirrors ``Detector._classify``'s reason precedence so a verdict from
    any batched consumer (the sharded worker pool here, the fleet
    gateway's per-tenant engines) is indistinguishable from one produced
    by ``VProfilePipeline.process``.
    """
    expected = int(detection.expected_cluster[row])
    if expected < 0:
        return DetectionResult(
            verdict=Verdict.ANOMALY,
            reason=AnomalyReason.UNKNOWN_SA,
            source_address=sa,
            expected_cluster=None,
            predicted_cluster=None,
            min_distance=None,
            slack=None,
        )
    predicted = int(detection.predicted_cluster[row])
    min_distance = float(detection.min_distance[row])
    slack = float(detection.slack[row])
    if predicted != expected:
        reason: AnomalyReason | None = AnomalyReason.CLUSTER_MISMATCH
    elif slack > margin:
        reason = AnomalyReason.DISTANCE_EXCEEDED
    else:
        reason = None
    return DetectionResult(
        verdict=Verdict.ANOMALY if reason else Verdict.OK,
        reason=reason,
        source_address=sa,
        expected_cluster=expected,
        predicted_cluster=predicted,
        min_distance=min_distance,
        slack=slack,
    )


class ShardedWorkerPool:
    """N classification workers behind N bounded shard queues.

    Parameters
    ----------
    detector:
        The shared trained detector (read-mostly).
    n_workers:
        Worker/shard count; identity ``SA % n_workers`` picks the shard.
    queue_capacity / policy:
        Per-shard queue bound and overflow behaviour.
    batch_size:
        Max feature vectors classified per vectorised detector call.
    updater:
        Optional Algorithm 4 online updater; OK verdicts are folded into
        the shared model under the pool's update lock.
    on_result:
        Callback invoked from worker threads for every verdict.
    recorder:
        Optional flight recorder; every verdict is appended to its
        shard's ring from the worker thread that produced it, so the
        pre-alert context window never crosses shard locks.
    """

    def __init__(
        self,
        detector: Detector,
        n_workers: int = 1,
        *,
        queue_capacity: int = 256,
        policy: OverflowPolicy | str = OverflowPolicy.BLOCK,
        batch_size: int = 8,
        updater: OnlineUpdater | None = None,
        on_result: Callable[[StreamVerdict], None] | None = None,
        recorder: FlightRecorder | None = None,
    ):
        if n_workers < 1:
            raise StreamError(f"n_workers must be >= 1, got {n_workers}")
        if batch_size < 1:
            raise StreamError(f"batch_size must be >= 1, got {batch_size}")
        self.detector = detector
        self.n_workers = int(n_workers)
        self.batch_size = int(batch_size)
        self.updater = updater
        self.on_result = on_result
        self.recorder = recorder
        self.queues: list[BoundedQueue[tuple[int, StreamMessage, float]]] = [
            BoundedQueue(queue_capacity, policy, name=f"shard{i}")
            for i in range(self.n_workers)
        ]
        self.updated = 0
        self._update_lock = threading.Lock()
        self._idle = threading.Condition()
        self._inflight = [0] * self.n_workers
        self._failure: BaseException | None = None
        self._registry = get_registry()
        self._threads = [
            threading.Thread(
                target=self._worker, args=(i,), name=f"vprofile-shard{i}", daemon=True
            )
            for i in range(self.n_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def shard_of(self, message: StreamMessage) -> int:
        return message.edge_set.identity % self.n_workers

    def submit(self, seq: int, message: StreamMessage) -> bool:
        """Enqueue one message; False when the overflow policy dropped it.

        Blocks under the ``BLOCK`` policy when the target shard is full —
        that is the backpressure reaching the ingestion stage.
        """
        if self._failure is not None:
            raise StreamError("worker pool failed") from self._failure
        shard = self.shard_of(message)
        queue = self.queues[shard]
        ingest_t = monotonic() if self._registry.enabled else 0.0
        accepted = queue.put((seq, message, ingest_t))
        if self._registry.enabled:
            label = str(shard)
            self._registry.gauge(
                QUEUE_DEPTH_METRIC,
                help="Messages waiting in a shard queue",
                shard=label,
            ).set(queue.depth)
            if not accepted:
                self._registry.counter(
                    DROPPED_METRIC,
                    help="Messages dropped by queue overflow policies",
                    shard=label,
                ).inc()
        return accepted

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Block until every accepted message has been classified."""
        with self._idle:
            while any(q.depth for q in self.queues) or any(self._inflight):
                if self._failure is not None:
                    raise StreamError("worker pool failed") from self._failure
                self._idle.wait(0.05)
        if self._failure is not None:
            raise StreamError("worker pool failed") from self._failure

    def close(self) -> None:
        """Signal end-of-stream and join the workers."""
        for queue in self.queues:
            queue.close()
        for thread in self._threads:
            thread.join()
        if self._failure is not None:
            raise StreamError("worker pool failed") from self._failure

    @property
    def dropped(self) -> int:
        return sum(q.dropped for q in self.queues)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self, index: int) -> None:
        queue = self.queues[index]

        def mark_inflight(n: int) -> None:
            # Runs under the queue lock: the dequeue and the in-flight
            # count change atomically from drain()'s point of view.
            self._inflight[index] = n

        try:
            while True:
                try:
                    batch = queue.get_batch(self.batch_size, on_batch=mark_inflight)
                except QueueClosed:
                    return
                try:
                    self._classify_batch(index, batch)
                finally:
                    self._inflight[index] = 0
                    with self._idle:
                        self._idle.notify_all()
        except BaseException as exc:  # surface, don't die silently
            self._failure = exc
            with self._idle:
                self._idle.notify_all()

    def _classify_batch(self, index: int, batch: list) -> None:
        vectors = np.stack([item[1].edge_set.vector for item in batch])
        sas = np.array(
            [item[1].edge_set.source_address for item in batch], dtype=np.int64
        )
        detection = self.detector.classify_batch(vectors, sas)
        registry = self._registry
        for row, (seq, message, ingest_t) in enumerate(batch):
            result = self._result_from_batch(detection, row, int(sas[row]))
            if not result.is_anomaly and self.updater is not None:
                with self._update_lock:
                    report = self.updater.update([message.edge_set])
                    # The tally must share the update's critical section:
                    # a bare `self.updated += n` after the lock is a lost-
                    # update race between shards (found by VPL301).
                    folded = sum(report.updated.values())
                    if folded:
                        self.updated += folded
            if registry.enabled and ingest_t:
                registry.histogram(
                    LATENCY_METRIC,
                    help="Ingest-to-verdict latency through the stream runtime",
                ).observe(monotonic() - ingest_t)
            if self.recorder is not None:
                self.recorder.record(
                    seq,
                    index,
                    int(sas[row]),
                    message.start_s,
                    message.edge_set.vector,
                    result,
                )
            if self.on_result is not None:
                self.on_result(
                    StreamVerdict(
                        seq=seq, message=message, result=result, worker=index
                    )
                )

    def _result_from_batch(
        self, detection: BatchDetection, row: int, sa: int
    ) -> DetectionResult:
        return result_from_batch(detection, row, sa, self.detector.margin)
