"""Online streaming detection runtime.

The batch pipeline answers "what happened in this capture?"; this
subsystem answers the question the paper actually poses — "is the frame
that just ended legitimate?" — against a continuous digitizer stream:

* :mod:`repro.stream.chunks` — chunked ingestion (:class:`SampleChunk`,
  the :class:`ChunkSource` protocol, live-simulation and archive-replay
  adapters);
* :mod:`repro.stream.segmenter` / :mod:`repro.stream.extractor` —
  incremental message segmentation and Algorithm 1 extraction with
  state carried across chunk boundaries, provably equivalent to the
  batch path on the concatenated stream;
* :mod:`repro.stream.queues` / :mod:`repro.stream.workers` — bounded
  per-shard queues with explicit backpressure policies feeding
  SA-sharded classification workers that batch the vectorised detector;
* :mod:`repro.stream.runtime` — the supervisor: ordering, hijack
  injection, checkpoint/resume, graceful shutdown, obs metrics;
* :mod:`repro.stream.telemetry` — longitudinal telemetry riding on the
  runtime: metrics time-series, per-SA profile health, and the alert
  flight recorder (see :mod:`repro.obs`);
* :mod:`repro.stream.checkpoint` — the on-disk checkpoint format.

Typical use::

    pipeline = VProfilePipeline()
    pipeline.train(training_traces)
    source = ReplaySource.from_archive("capture.npz")
    report = pipeline.stream(source, StreamConfig(n_workers=2))
    print(report.frames_per_s, report.anomalies)
"""

from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.chunks import (
    DEFAULT_CHUNK_SAMPLES,
    ChunkSource,
    LiveSource,
    ReplaySource,
    SampleChunk,
)
from repro.stream.extractor import ExtractorStats, StreamingExtractor, StreamMessage
from repro.stream.queues import BoundedQueue, OverflowPolicy, QueueClosed
from repro.stream.runtime import (
    CHUNKS_METRIC,
    EXTRACTION_FAILURES_METRIC,
    SAMPLES_METRIC,
    StreamConfig,
    StreamReport,
    StreamRuntime,
)
from repro.stream.segmenter import StreamingSegmenter
from repro.stream.telemetry import StreamTelemetry, TelemetryConfig
from repro.stream.workers import (
    DROPPED_METRIC,
    LATENCY_METRIC,
    QUEUE_DEPTH_METRIC,
    ShardedWorkerPool,
    StreamVerdict,
    result_from_batch,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "DEFAULT_CHUNK_SAMPLES",
    "ChunkSource",
    "LiveSource",
    "ReplaySource",
    "SampleChunk",
    "ExtractorStats",
    "StreamingExtractor",
    "StreamMessage",
    "BoundedQueue",
    "OverflowPolicy",
    "QueueClosed",
    "CHUNKS_METRIC",
    "EXTRACTION_FAILURES_METRIC",
    "SAMPLES_METRIC",
    "StreamConfig",
    "StreamReport",
    "StreamRuntime",
    "StreamingSegmenter",
    "StreamTelemetry",
    "TelemetryConfig",
    "DROPPED_METRIC",
    "LATENCY_METRIC",
    "QUEUE_DEPTH_METRIC",
    "ShardedWorkerPool",
    "StreamVerdict",
    "result_from_batch",
]
