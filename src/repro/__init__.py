"""vProfile: voltage-based sender identification for CAN buses.

A full reproduction of "vProfile: Voltage-Based Anomaly Detection in
Controller Area Networks" (Liu, Moreno, Dunne, Fischmeister — DATE 2021,
extended in Liu's 2021 MASc thesis).  The package contains:

* :mod:`repro.core` — the vProfile algorithms: edge-set extraction,
  training, detection, and the online model update;
* :mod:`repro.can` — a CAN 2.0 / SAE J1939 protocol substrate;
* :mod:`repro.analog` — a physics-based transceiver / bus-voltage model
  standing in for the paper's test vehicles;
* :mod:`repro.acquisition` — the digitizer (ADC) model;
* :mod:`repro.vehicles` — synthetic "Vehicle A" / "Vehicle B" presets;
* :mod:`repro.attacks` — hijack and foreign-device intruders;
* :mod:`repro.eval` — runners regenerating every table and figure;
* :mod:`repro.baselines` — the related-work comparators.

Quickstart::

    from repro.vehicles import vehicle_a, capture_session
    from repro.core import VProfilePipeline, PipelineConfig

    vehicle = vehicle_a()
    session = capture_session(vehicle, duration_s=5.0, seed=0)
    train, test = session.split(train_fraction=0.5)

    pipeline = VProfilePipeline(PipelineConfig(margin=1.0,
                                               sa_clusters=vehicle.sa_clusters))
    pipeline.train(train)
    for trace in test:
        result = pipeline.process(trace)
"""

from repro.errors import (
    AcquisitionError,
    CanError,
    DatasetError,
    DetectionError,
    ExtractionError,
    ReproError,
    SingularCovarianceError,
    TrainingError,
    WaveformError,
)

__version__ = "1.0.0"

__all__ = [
    "AcquisitionError",
    "CanError",
    "DatasetError",
    "DetectionError",
    "ExtractionError",
    "ReproError",
    "SingularCovarianceError",
    "TrainingError",
    "WaveformError",
    "__version__",
]
