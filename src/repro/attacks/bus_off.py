"""Bus-off attack simulation (fault-induction, paper Section 1.1 [6]).

An adversary who can force bit errors on a victim's transmissions (by
transmitting dominant bits over the victim's recessive ones at exactly
the right time) drives the victim's transmit error counter up by +8 per
destroyed frame.  After 32 consecutive induced errors the victim crosses
TEC > 255 and disconnects itself from the bus — a full denial of service
against one ECU using nothing but protocol-compliant behaviour.

This module simulates the counter dynamics of such an attack, produces
the victim's transmission timeline (which simply *stops*), and shows how
the :mod:`repro.ids` period monitor surfaces the silence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.can.faults import BUS_OFF_LIMIT, ErrorState, FaultConfinement
from repro.errors import CanError


@dataclass(frozen=True)
class BusOffAttackResult:
    """Outcome of a simulated bus-off attack.

    Attributes
    ----------
    messages_to_bus_off:
        Victim transmission attempts until it disconnects
        (``None`` when the attack intensity cannot overcome recovery).
    time_to_bus_off_s:
        Wall-clock time at the victim's period.
    tec_trajectory:
        The victim's TEC after each transmission attempt.
    reached_error_passive_at:
        Attempt index at which the victim first went error-passive.
    """

    messages_to_bus_off: int | None
    time_to_bus_off_s: float | None
    tec_trajectory: tuple[int, ...]
    reached_error_passive_at: int | None


def simulate_bus_off_attack(
    *,
    attack_every: int = 1,
    victim_period_s: float = 0.02,
    max_attempts: int = 100_000,
) -> BusOffAttackResult:
    """Walk a victim's TEC under periodic error induction.

    Parameters
    ----------
    attack_every:
        The attacker destroys every n-th victim transmission (1 = every
        one, the classic attack).  Between attacks the victim transmits
        successfully and its TEC decays by 1 per frame, so sufficiently
        sparse attacks never reach bus-off — the simulation reports
        that too.
    victim_period_s:
        The victim's message period, for the wall-clock estimate.
    max_attempts:
        Give up (attack ineffective) after this many transmissions.
    """
    if attack_every < 1:
        raise CanError("attack_every must be at least 1")
    node = FaultConfinement()
    trajectory = [0]
    passive_at: int | None = None
    for attempt in range(1, max_attempts + 1):
        if attempt % attack_every == 0:
            node.on_tx_error()
        else:
            node.on_tx_success()
        trajectory.append(node.tec)
        if passive_at is None and node.state is ErrorState.ERROR_PASSIVE:
            passive_at = attempt
        if node.is_bus_off:
            return BusOffAttackResult(
                messages_to_bus_off=attempt,
                time_to_bus_off_s=attempt * victim_period_s,
                tec_trajectory=tuple(trajectory),
                reached_error_passive_at=passive_at,
            )
    return BusOffAttackResult(
        messages_to_bus_off=None,
        time_to_bus_off_s=None,
        tec_trajectory=tuple(trajectory[-256:]),
        reached_error_passive_at=passive_at,
    )


def minimum_messages_to_bus_off() -> int:
    """The textbook result: ceil(256 / 8) = 32 destroyed frames."""
    return -(-(BUS_OFF_LIMIT + 1) // 8)


def victim_timeline_with_bus_off(
    *,
    period_s: float,
    horizon_s: float,
    bus_off_at_s: float,
    recovery: bool = False,
    bitrate: float = 250_000.0,
) -> list[float]:
    """Arrival times of a periodic victim that gets knocked off the bus.

    The victim transmits on schedule until ``bus_off_at_s``, goes
    silent, and (optionally) resumes after the 128 x 11 recessive-bit
    recovery time — exactly the pattern the period monitor's ``gap``
    rule flags.
    """
    if period_s <= 0 or horizon_s <= 0:
        raise CanError("period and horizon must be positive")
    node = FaultConfinement(tec=BUS_OFF_LIMIT + 1)
    recovery_delay = node.recovery_time_s(bitrate)
    times: list[float] = []
    t = 0.0
    while t < horizon_s:
        silent = bus_off_at_s <= t < bus_off_at_s + recovery_delay
        if t < bus_off_at_s or (recovery and not silent and t >= bus_off_at_s):
            times.append(t)
        t += period_s
    return times
