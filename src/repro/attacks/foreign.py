"""Foreign-device intruder simulation (threat model, Section 3.1).

A foreign intruder attaches new hardware to the bus and transmits under
a legitimate ECU's source address.  The device did not exist during
model training, so its transceiver fingerprint is unknown.

The paper's foreign imitation test (Section 4.1) picks the two ECUs with
the *most similar* voltage profiles, removes the first (the imposter)
from the training set, and replays the capture with the imposter's
messages claiming the second ECU's (the victim's) SA.  We reproduce that
procedure, and additionally provide a fully synthetic plug-in dongle for
scenarios beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.acquisition.sampler import CaptureChain
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.analog.transceiver import TransceiverParams
from repro.attacks.hijack import LabelledEdgeSet
from repro.can.frame import CanFrame
from repro.can.j1939 import J1939Id
from repro.core.distances import euclidean_distance, mahalanobis_distance
from repro.core.edge_extraction import ExtractedEdgeSet
from repro.core.model import Metric, VProfileModel
from repro.errors import DatasetError


@dataclass(frozen=True)
class ForeignScenario:
    """The cast of a foreign imitation test.

    Attributes
    ----------
    imposter:
        ECU (or device) whose messages are excluded from training and
        replayed under a false SA.
    victim:
        ECU whose SA the imposter claims.
    similarity:
        The inter-profile distance that made this the most similar pair.
    """

    imposter: str
    victim: str
    similarity: float


def most_similar_pair(model: VProfileModel) -> ForeignScenario:
    """Find the two clusters with the most similar voltage profiles.

    Mirrors the paper's selection: smallest Euclidean distance between
    cluster means for the Euclidean experiments, smallest (symmetrised)
    Mahalanobis distance for the Mahalanobis experiments.
    """
    if model.n_clusters < 2:
        raise DatasetError("need at least two clusters to pick a similar pair")
    best: tuple[float, str, str] | None = None
    for i, a in enumerate(model.clusters):
        for b in model.clusters[i + 1 :]:
            if model.metric is Metric.MAHALANOBIS:
                distance = 0.5 * (
                    mahalanobis_distance(a.mean, b.mean, b.inv_covariance)
                    + mahalanobis_distance(b.mean, a.mean, a.inv_covariance)
                )
            else:
                distance = euclidean_distance(a.mean, b.mean)
            if best is None or distance < best[0]:
                best = (distance, a.name, b.name)
    distance, imposter, victim = best
    return ForeignScenario(imposter=imposter, victim=victim, similarity=distance)


def apply_foreign_imitation(
    edge_sets: Sequence[ExtractedEdgeSet],
    scenario: ForeignScenario,
    victim_sa: int,
) -> list[LabelledEdgeSet]:
    """Relabel the imposter's replayed messages with the victim's SA.

    All other traffic passes through unchanged as legitimate.  The
    returned labels mark imposter messages as attacks.
    """
    labelled: list[LabelledEdgeSet] = []
    for edge_set in edge_sets:
        sender = edge_set.metadata.get("sender", "?")
        if sender == scenario.imposter:
            forged = replace(edge_set, source_address=victim_sa)
            labelled.append(LabelledEdgeSet(forged, is_attack=True, true_sender=sender))
        else:
            labelled.append(LabelledEdgeSet(edge_set, is_attack=False, true_sender=sender))
    return labelled


@dataclass(frozen=True)
class ForeignDongle:
    """A synthetic plug-in attack device with its own transceiver.

    Goes beyond the paper's replay methodology: the dongle crafts
    complete frames under a victim SA and transmits them through its own
    (untrained) analog fingerprint, exercising the full synthesis path.
    """

    transceiver: TransceiverParams
    victim_sa: int
    pgn: int = 0xF004
    priority: int = 3

    def craft_frame(self, payload: bytes = b"\x00" * 8) -> CanFrame:
        """A forged J1939 data frame claiming the victim's SA."""
        j1939 = J1939Id(
            priority=self.priority, pgn=self.pgn, source_address=self.victim_sa
        )
        return CanFrame(can_id=j1939.to_can_id(), data=payload, extended=True)

    def inject(
        self,
        chain: CaptureChain,
        count: int,
        *,
        env: Environment = NOMINAL_ENVIRONMENT,
        rng: np.random.Generator | None = None,
    ) -> list:
        """Capture ``count`` forged transmissions through ``chain``.

        Returns the digitized traces; metadata marks them as attacks.
        """
        if count < 1:
            raise DatasetError("count must be positive")
        if rng is None:
            # Deterministic fallback: repeated injections must craft the
            # same payloads and analog jitter (VPL102).
            rng = np.random.default_rng(0)
        traces = []
        for index in range(count):
            payload = bytes(
                [(index * 3) % 256] + list(rng.integers(0, 256, size=7, dtype=np.uint8))
            )
            traces.append(
                chain.capture_frame(
                    self.craft_frame(payload),
                    self.transceiver,
                    env=env,
                    rng=rng,
                    metadata={"is_attack": True},
                )
            )
        return traces
