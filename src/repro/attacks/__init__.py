"""Attack simulations: the paper's threat model (Section 3.1) plus the
fault-induction / bus-off attack its introduction cites (Section 1.1)."""

from repro.attacks.bus_off import (
    BusOffAttackResult,
    minimum_messages_to_bus_off,
    simulate_bus_off_attack,
    victim_timeline_with_bus_off,
)
from repro.attacks.foreign import (
    ForeignDongle,
    ForeignScenario,
    apply_foreign_imitation,
    most_similar_pair,
)
from repro.attacks.hijack import LabelledEdgeSet, apply_hijack

__all__ = [
    "BusOffAttackResult",
    "minimum_messages_to_bus_off",
    "simulate_bus_off_attack",
    "victim_timeline_with_bus_off",
    "ForeignDongle",
    "ForeignScenario",
    "apply_foreign_imitation",
    "most_similar_pair",
    "LabelledEdgeSet",
    "apply_hijack",
]
