"""Hijack-intruder simulation (threat model, Section 3.1).

A hijack intruder controls an existing, legitimate ECU and sends crafted
messages under another ECU's source address.  The analog waveform still
comes from the *compromised* ECU's transceiver — only the claimed SA
lies.  The paper simulates this by replaying recorded traffic and
rewriting each message's SA in software with 20 % probability to an SA
belonging to a different cluster (Section 4.1); we do the same at the
edge-set level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.edge_extraction import ExtractedEdgeSet
from repro.errors import DatasetError


@dataclass(frozen=True)
class LabelledEdgeSet:
    """An edge set with its attack ground truth.

    Attributes
    ----------
    edge_set:
        The (possibly SA-rewritten) edge set handed to the detector.
    is_attack:
        True when the claimed SA does not match the true sender.
    true_sender:
        Ground-truth ECU name.
    """

    edge_set: ExtractedEdgeSet
    is_attack: bool
    true_sender: str


def apply_hijack(
    edge_sets: Sequence[ExtractedEdgeSet],
    sa_clusters: Mapping[int, str],
    *,
    probability: float = 0.2,
    rng: np.random.Generator | None = None,
) -> list[LabelledEdgeSet]:
    """Rewrite SAs with ``probability`` to one of a *different* cluster.

    This reproduces the paper's hijack imitation test "where every ECU
    can imitate every other ECU": the replacement SA is drawn uniformly
    from the SAs belonging to other clusters.

    Parameters
    ----------
    edge_sets:
        Clean replay data (extraction results with true SAs).
    sa_clusters:
        SA -> ECU name map defining which SAs share a cluster.
    probability:
        Chance that any given message is attacked (paper: 20 %).
    rng:
        Random source; a deterministic seed-0 generator when omitted, so
        repeated runs attack the same messages (VPL102 forbids the old
        OS-entropy fallback).
    """
    if not 0.0 <= probability <= 1.0:
        raise DatasetError(f"probability must be in [0, 1], got {probability}")
    if rng is None:
        rng = np.random.default_rng(0)

    sas_by_cluster: dict[str, list[int]] = {}
    for sa, name in sa_clusters.items():
        sas_by_cluster.setdefault(name, []).append(sa)
    if len(sas_by_cluster) < 2:
        raise DatasetError("hijack needs at least two clusters to imitate across")

    labelled: list[LabelledEdgeSet] = []
    for edge_set in edge_sets:
        sender = edge_set.metadata.get("sender", "?")
        own_cluster = sa_clusters.get(edge_set.source_address)
        if own_cluster is not None and rng.uniform() < probability:
            foreign_sas = [
                sa
                for name, sas in sas_by_cluster.items()
                if name != own_cluster
                for sa in sas
            ]
            forged_sa = int(foreign_sas[rng.integers(len(foreign_sas))])
            forged = replace(edge_set, source_address=forged_sa)
            labelled.append(LabelledEdgeSet(forged, is_attack=True, true_sender=sender))
        else:
            labelled.append(LabelledEdgeSet(edge_set, is_attack=False, true_sender=sender))
    return labelled
