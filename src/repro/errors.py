"""Exception hierarchy shared by all :mod:`repro` subpackages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CanError(ReproError):
    """A CAN frame or bitstream violates the protocol."""


class CanEncodingError(CanError):
    """A frame field is out of range or otherwise unencodable."""


class CanDecodingError(CanError):
    """A bitstream cannot be decoded into a valid frame."""


class StuffingError(CanDecodingError):
    """A stuffed bitstream contains an illegal run of identical bits."""


class CrcError(CanDecodingError):
    """The CRC-15 of a received frame does not match its contents."""


class WaveformError(ReproError):
    """Analog waveform synthesis was asked for something impossible."""


class AcquisitionError(ReproError):
    """An ADC/sampling parameter is invalid."""


class ExtractionError(ReproError):
    """Edge-set extraction failed (Algorithm 1 ran off the trace)."""


class TrainingError(ReproError):
    """Model training (Algorithm 2) cannot proceed."""


class SingularCovarianceError(TrainingError):
    """A cluster covariance matrix is singular.

    The paper reports exactly this failure when the capture resolution is
    reduced to 10 bits or below (Sections 4.3.1-4.3.2): quantisation
    collapses the per-sample variance and the covariance matrix loses full
    rank, making the Mahalanobis metric undefined.
    """


class DetectionError(ReproError):
    """Detection (Algorithm 3) was invoked with an unusable model."""


class DatasetError(ReproError):
    """A vehicle dataset request is inconsistent."""


class ObservabilityError(ReproError):
    """A metrics/tracing/event-log request is malformed (bad metric type,
    unparseable metrics file, invalid quantile, ...)."""


class StreamError(ReproError):
    """The streaming runtime was misused (inconsistent chunk parameters,
    out-of-order chunks, resume from a corrupt checkpoint, ...)."""


class FleetError(ReproError):
    """The fleet gateway was misused (unknown tenant, malformed chunk
    payload, out-of-order ingest, eviction without a state directory,
    protocol violations on the wire)."""


class PerfError(ReproError):
    """The parallel capture/extraction engine was misconfigured (bad job
    count, unparseable ``REPRO_JOBS``, unbatchable synthesis request)."""


class CacheError(PerfError):
    """The capture cache is unusable (unwritable root, corrupt entry)."""
