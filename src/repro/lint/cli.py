"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes follow compiler conventions: 0 clean, 1 violations found,
2 usage errors (unreadable paths, malformed config).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from repro.lint import fingerprint as fp
from repro.lint.config import LintConfigError, load_config
from repro.lint.diagnostics import format_report
from repro.lint.rules import iter_rules
from repro.lint.runner import lint_paths

DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker: determinism, seed "
        "discipline, concurrency safety, observability hygiene (VPLxxx).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for config lookup and relative paths "
        "(default: cwd)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes/prefixes to run (e.g. VPL1,VPL301)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated codes/prefixes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--update-schema-lock",
        action="store_true",
        help="re-record the capture-cache schema fingerprint and exit",
    )
    parser.add_argument(
        "-q", "--quiet",
        action="store_true",
        help="suppress the summary line on a clean run",
    )
    return parser


def _codes(raw: Optional[str]) -> tuple[str, ...]:
    if not raw:
        return ()
    return tuple(code.strip().upper() for code in raw.split(",") if code.strip())


def main(argv: Optional[Sequence[str]] = None, *,
         stdout: Optional[IO[str]] = None,
         stderr: Optional[IO[str]] = None) -> int:
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}", file=out)
        return 0

    root = Path(args.root)
    try:
        config = load_config(root)
    except LintConfigError as exc:
        print(f"error: {exc}", file=err)
        return 2
    if args.select:
        config.select = _codes(args.select)
    if args.ignore:
        config.ignore = config.ignore + _codes(args.ignore)

    if args.update_schema_lock:
        path = fp.update_lock(root, config)
        print(f"schema lock updated -> {path}", file=out)
        return 0

    try:
        diagnostics = lint_paths(args.paths, config, root=root)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=err)
        return 2

    if diagnostics:
        print(format_report(diagnostics), file=out)
        return 1
    if not args.quiet:
        print("all checks passed", file=out)
    return 0


__all__ = ["DEFAULT_PATHS", "build_parser", "main"]
