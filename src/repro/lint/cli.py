"""Command-line front end: ``python -m repro.lint`` / ``repro lint``.

Exit codes follow compiler conventions: 0 clean, 1 violations found,
2 usage errors (unreadable paths, malformed config).  With
``--baseline`` only findings absent from the checked-in baseline fail
the run; waived findings still surface (a summary line in text mode, a
``suppressions`` entry in SARIF).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from repro.lint import fingerprint as fp
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfigError, load_config
from repro.lint.diagnostics import format_report
from repro.lint.rules import iter_rules
from repro.lint.runner import run_lint
from repro.lint.sarif import render_sarif

DEFAULT_PATHS = ("src", "tests")

#: Environment override for ``--jobs`` (CI sets this fleet-wide).
JOBS_ENV = "REPRO_LINT_JOBS"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Whole-program invariant checker: determinism, seed "
        "provenance, concurrency safety, executor boundaries, "
        "observability hygiene (VPLxxx).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for config lookup and relative paths "
        "(default: cwd)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes/prefixes to run (e.g. VPL1,VPL301)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated codes/prefixes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="report format (sarif emits a SARIF 2.1.0 log on stdout)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="analyze modules on N threads (default: $"
        f"{JOBS_ENV} or 1); the shared parse pass makes this safe",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental analysis cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analyzed/restored/parse counters to stderr",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="waive findings recorded in the checked-in baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-record the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--update-schema-lock",
        action="store_true",
        help="re-record the capture-cache schema fingerprint and exit",
    )
    parser.add_argument(
        "-q", "--quiet",
        action="store_true",
        help="suppress the summary line on a clean run",
    )
    return parser


def _codes(raw: Optional[str]) -> tuple[str, ...]:
    if not raw:
        return ()
    return tuple(code.strip().upper() for code in raw.split(",") if code.strip())


def _jobs(args: argparse.Namespace) -> Optional[int]:
    if args.jobs is not None:
        return args.jobs
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            return None
    return None


def main(argv: Optional[Sequence[str]] = None, *,
         stdout: Optional[IO[str]] = None,
         stderr: Optional[IO[str]] = None) -> int:
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}", file=out)
        return 0

    root = Path(args.root)
    try:
        config = load_config(root)
    except LintConfigError as exc:
        print(f"error: {exc}", file=err)
        return 2
    if args.select:
        config.select = _codes(args.select)
    if args.ignore:
        config.ignore = config.ignore + _codes(args.ignore)

    if args.update_schema_lock:
        path = fp.update_lock(root, config)
        print(f"schema lock updated -> {path}", file=out)
        return 0

    try:
        result = run_lint(
            args.paths,
            config,
            root=root,
            jobs=_jobs(args),
            use_cache=not args.no_cache,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=err)
        return 2

    if args.stats:
        print(
            f"modules: {len(result.analyzed)} analyzed, "
            f"{len(result.restored)} restored from cache; "
            f"{result.parse_count} parsed",
            file=err,
        )

    if args.update_baseline:
        baseline = Baseline.from_diagnostics(result.diagnostics)
        path = baseline.save(root, config)
        print(
            f"baseline updated -> {path} "
            f"({len(result.diagnostics)} findings recorded)",
            file=out,
        )
        return 0

    new, waived, stale = result.diagnostics, [], []
    if args.baseline:
        baseline = Baseline.load(root, config)
        if baseline is None:
            print(
                f"error: baseline {config.baseline} is missing or "
                "unreadable; run --update-baseline first",
                file=err,
            )
            return 2
        split = baseline.apply(result.diagnostics)
        new, waived, stale = split.new, split.waived, split.stale

    if args.format == "sarif":
        print(
            render_sarif(
                new,
                iter_rules(),
                waived=waived,
                root_uri=root.resolve().as_uri() + "/",
            ),
            file=out,
            end="",
        )
        return 1 if new else 0

    if new:
        print(format_report(new), file=out)
    if waived:
        print(f"{len(waived)} finding(s) waived by {config.baseline}", file=out)
    for path_, code, _message in stale:
        print(
            f"stale baseline entry (fixed): {path_}: {code} — "
            "run --update-baseline to shrink the record",
            file=out,
        )
    if new:
        return 1
    if not args.quiet and not waived:
        print("all checks passed", file=out)
    return 0


__all__ = ["DEFAULT_PATHS", "JOBS_ENV", "build_parser", "main"]
