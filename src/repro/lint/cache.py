"""Incremental analysis cache: warm lint runs parse nothing.

The cacheable unit is one module's *analysis record*: its summary (the
whole-program facts in :mod:`repro.lint.dataflow` shape) plus the
already-filtered module-local diagnostics.  Both are pure functions of
the module's bytes and the checker configuration, so the cache key is
``(source sha256, analysis version, config digest, registered rules)``
— edit a file and only that file re-analyzes; bump the lint version or
touch the config and the whole cache misses.

Project rules are *never* cached: their verdicts depend on other
modules (the lockset of a helper's callers, the schema lock on disk),
so they recompute every pass — cheaply, because they read summaries,
not trees.

One JSON file per project root (``<cache_dir>/analysis.json``), written
atomically; a corrupt or foreign-version file is treated as empty, so
the cache can always be deleted or ignored without changing results.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic

#: Bump on any change to rule logic, summary shape, or diagnostics —
#: invalidates every cached analysis record.
ANALYSIS_VERSION = 1

_CACHE_FILE = "analysis.json"


def _diag_to_wire(diagnostic: Diagnostic) -> list[Any]:
    return [
        diagnostic.line, diagnostic.col, diagnostic.code, diagnostic.message
    ]


def _diag_from_wire(path: str, wire: list[Any]) -> Diagnostic:
    line, col, code, message = wire
    return Diagnostic(
        path=path, line=int(line), col=int(col),
        code=str(code), message=str(message),
    )


class AnalysisCache:
    """Sha-keyed store of per-module analysis records."""

    def __init__(self, root: Path, config: LintConfig, rule_codes: tuple[str, ...]):
        self.root = Path(root)
        self.path = self.root / config.cache_dir / _CACHE_FILE
        self.key = {
            "version": ANALYSIS_VERSION,
            "config": config.digest(),
            "rules": list(rule_codes),
        }
        self._modules: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls, root: Path, config: LintConfig, rule_codes: tuple[str, ...]
    ) -> "AnalysisCache":
        cache = cls(root, config, rule_codes)
        try:
            payload = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) or payload.get("key") != cache.key:
            cache._dirty = True  # stale global key: rewrite on save
            return cache
        modules = payload.get("modules")
        if isinstance(modules, dict):
            cache._modules = modules
        return cache

    # ------------------------------------------------------------------
    def get(
        self, path: str, sha: str
    ) -> Optional[tuple[dict[str, Any], list[Diagnostic]]]:
        """Cached ``(summary, module_diagnostics)`` for unchanged bytes."""
        record = self._modules.get(path)
        if record is None or record.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        diagnostics = [
            _diag_from_wire(path, wire) for wire in record.get("diagnostics", [])
        ]
        return record.get("summary") or {}, diagnostics

    def put(
        self,
        path: str,
        sha: str,
        summary: dict[str, Any],
        diagnostics: list[Diagnostic],
    ) -> None:
        self._modules[path] = {
            "sha": sha,
            "summary": summary,
            "diagnostics": [_diag_to_wire(d) for d in diagnostics],
        }
        self._dirty = True

    def prune(self, live_paths: set[str]) -> None:
        """Drop records for files no longer part of the lint run."""
        dead = [path for path in self._modules if path not in live_paths]
        for path in dead:
            del self._modules[path]
            self._dirty = True

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Atomic write (tmp + rename) so a crashed run never corrupts."""
        if not self._dirty:
            return
        payload = {"key": self.key, "modules": self._modules}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(self.path.parent),
            prefix=_CACHE_FILE,
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            os.replace(handle.name, self.path)
        except OSError:
            try:  # best effort: a cache that cannot write is just cold
                os.unlink(handle.name)
            except OSError:
                pass
        self._dirty = False


__all__ = ["ANALYSIS_VERSION", "AnalysisCache"]
