"""Inline suppression comments: ``# vpl: ignore[VPL104]``.

A suppression silences diagnostics *on its own line only* and must name
the codes it waives (``# vpl: ignore`` with no codes waives everything
on the line — use sparingly).  Comments are read with :mod:`tokenize` so
strings containing the marker text are never misparsed.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Mapping

#: Sentinel meaning "every code suppressed on this line".
ALL_CODES = "*"

_MARKER = re.compile(
    r"#\s*vpl:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def collect_suppressions(source: str) -> Mapping[int, frozenset[str]]:
    """Map of line number -> codes suppressed on that line."""
    suppressed: dict[int, frozenset[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressed  # the parser will report the real problem
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if not match:
            continue
        codes = match.group("codes")
        if codes:
            parsed = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
        else:
            parsed = frozenset({ALL_CODES})
        line = token.start[0]
        suppressed[line] = suppressed.get(line, frozenset()) | parsed
    return suppressed


def is_suppressed(
    suppressions: Mapping[int, frozenset[str]], line: int, code: str
) -> bool:
    codes = suppressions.get(line)
    if not codes:
        return False
    return ALL_CODES in codes or code.upper() in codes


__all__ = ["ALL_CODES", "collect_suppressions", "is_suppressed"]
