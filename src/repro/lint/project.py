"""Whole-program view: one shared parse pass over the linted tree.

Every lint run used to be a sequence of independent per-file parses;
interprocedural rules (lockset, taint, executor-boundary) need to see
the *program*.  :class:`Project` is that view: it expands the requested
paths, reads and hashes every source file, parses each file **exactly
once** (``parse_count`` is the regression hook for that contract), and
exposes per-module :class:`ProjectModule` records carrying the tree, the
import resolver, and the inline-suppression table.

Modules restored from the incremental cache skip parsing entirely —
their ``tree`` is ``None`` and analysis works from the cached
:class:`~repro.lint.dataflow.ModuleSummary` instead.
"""

from __future__ import annotations

import ast
import hashlib
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.lint.config import LintConfig
from repro.lint.resolver import ImportResolver
from repro.lint.suppressions import collect_suppressions

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: Path prefixes stripped when deriving a dotted module name.
SOURCE_PREFIXES = ("src/",)


def collect_files(paths: Iterable[str | Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not SKIP_DIRS.intersection(candidate.parts) \
                        and "egg-info" not in str(candidate):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")
    return sorted(found)


def relative_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def module_name(relpath: str) -> tuple[str, bool]:
    """Dotted module name for a repo-relative path, plus is-package.

    ``src/repro/stream/workers.py`` -> ``repro.stream.workers``;
    ``src/repro/lint/__init__.py`` -> ``repro.lint`` (a package);
    ``tests/test_obs.py`` -> ``tests.test_obs``.
    """
    name = relpath
    for prefix in SOURCE_PREFIXES:
        if name.startswith(prefix):
            name = name[len(prefix):]
            break
    if name.endswith(".py"):
        name = name[:-3]
    is_package = name.endswith("/__init__")
    if is_package:
        name = name[: -len("/__init__")]
    return name.replace("/", "."), is_package


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class ProjectModule:
    """One source file of the project.

    ``tree``/``resolver`` are ``None`` for modules restored from the
    incremental cache: the parse was skipped and analysis works from the
    cached summary.
    """

    path: str
    modname: str
    is_package: bool
    source: str
    sha: str
    tree: Optional[ast.Module] = None
    resolver: Optional[ImportResolver] = None
    syntax_error: Optional[SyntaxError] = field(default=None, repr=False)
    _suppressions: Optional[Mapping[int, frozenset[str]]] = field(
        default=None, repr=False
    )

    @property
    def suppressions(self) -> Mapping[int, frozenset[str]]:
        if self._suppressions is None:
            self._suppressions = collect_suppressions(self.source)
        return self._suppressions


class Project:
    """The shared parse pass: every linted module, parsed at most once."""

    def __init__(self, config: LintConfig, root: Path):
        self.config = config
        self.root = Path(root)
        self.modules: dict[str, ProjectModule] = {}
        #: Number of ``ast.parse`` calls made on behalf of this project —
        #: the regression hook for the parse-once contract.
        self.parse_count = 0
        self._parse_count_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        paths: Iterable[str | Path],
        config: Optional[LintConfig] = None,
        *,
        root: str | Path = ".",
    ) -> "Project":
        """Read, hash and register every lintable file under ``paths``.

        Files are *not* parsed here — :meth:`parse_module` is called
        lazily by the runner only for modules the cache cannot serve.
        """
        config = config or LintConfig()
        project = cls(config, Path(root))
        for path in collect_files(paths, project.root):
            relative = relative_path(path, project.root)
            if config.is_excluded(relative):
                continue
            project.add_source(relative, path.read_text(encoding="utf-8"))
        return project

    @classmethod
    def from_sources(
        cls,
        sources: Mapping[str, str],
        config: Optional[LintConfig] = None,
        *,
        root: str | Path = ".",
    ) -> "Project":
        """In-memory project (unit-test fixtures, ``lint_source``)."""
        config = config or LintConfig()
        project = cls(config, Path(root))
        for path, source in sources.items():
            if not config.is_excluded(path):
                project.add_source(path, source)
        return project

    def add_source(self, relative: str, source: str) -> ProjectModule:
        modname, is_package = module_name(relative)
        module = ProjectModule(
            path=relative,
            modname=modname,
            is_package=is_package,
            source=source,
            sha=source_digest(source),
        )
        self.modules[relative] = module
        return module

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    def parse_module(self, module: ProjectModule) -> Optional[ast.Module]:
        """Parse one module (at most once); ``None`` on syntax errors."""
        if module.tree is not None:
            return module.tree
        if module.syntax_error is not None:
            return None
        with self._parse_count_lock:  # workers parse disjoint modules
            self.parse_count += 1
        try:
            module.tree = ast.parse(module.source, filename=module.path)
        except SyntaxError as exc:
            module.syntax_error = exc
            return None
        module.resolver = ImportResolver(
            module.tree, module.modname, is_package=module.is_package
        )
        return module.tree

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def sorted_modules(self) -> list[ProjectModule]:
        return [self.modules[path] for path in sorted(self.modules)]

    def by_modname(self, modname: str) -> Optional[ProjectModule]:
        for module in self.modules.values():
            if module.modname == modname:
                return module
        return None


__all__ = [
    "Project",
    "ProjectModule",
    "SKIP_DIRS",
    "collect_files",
    "module_name",
    "relative_path",
    "source_digest",
]
