"""Static invariant checker for the vProfile reproduction.

The codebase's core guarantee — byte-identical traces across job
counts, batching modes, cache hits, and streaming vs batch — rests on
conventions that ordinary linters don't know about: seeds flow down
through spawned ``SeedSequence``\\ s, clocks live in ``repro.obs``,
Algorithm-4 updates stay lock-guarded, metric names stay literal, and
the capture cache's schema version moves with its key inputs.  This
package machine-checks those conventions over the repo's own AST.

Usage::

    python -m repro.lint src tests        # or: repro lint
    python -m repro.lint --list-rules
    python -m repro.lint --update-schema-lock

Rules carry ``VPLxxx`` codes (see ``docs/static-analysis.md``); inline
waivers use ``# vpl: ignore[VPL104]`` comments, repo-wide scoping lives
in ``[tool.repro-lint]`` in pyproject.toml.
"""

from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.callgraph import CallGraph
from repro.lint.config import (
    LintConfig,
    LintConfigError,
    config_from_mapping,
    load_config,
)
from repro.lint.diagnostics import Diagnostic, format_report
from repro.lint.fingerprint import schema_fingerprint, update_lock
from repro.lint.project import Project
from repro.lint.rules import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
    iter_rules,
    register,
)
from repro.lint.runner import (
    LintResult,
    collect_files,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.sarif import render_sarif

__all__ = [
    "AnalysisCache",
    "Baseline",
    "CallGraph",
    "Diagnostic",
    "LintConfig",
    "LintConfigError",
    "LintResult",
    "ModuleContext",
    "Project",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "collect_files",
    "config_from_mapping",
    "format_report",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
    "render_sarif",
    "run_lint",
    "schema_fingerprint",
    "update_lock",
]
