"""VPL2xx — seed-discipline rules.

Randomness flows *down* the call tree: callers spawn children from a
``SeedSequence`` and inject generators; callees never invent their own.

* VPL201 — a function that accepts an ``rng``/``seed`` parameter must
  not construct a generator disconnected from it.  The one blessed
  shape is the guarded, explicitly seeded fallback::

      if rng is None:
          rng = np.random.default_rng(0)

* VPL202 — ``SeedSequence`` children must come from ``.spawn()``; a
  direct ``SeedSequence(..., spawn_key=...)`` constructor hand-forges a
  child and silently detaches it from the parent's entropy tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ModuleContext, Rule, register

GENERATOR_FACTORIES = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState",
     "numpy.random.Generator"}
)


def _rng_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names that designate an injected randomness source."""
    names: set[str] = set()
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        name = arg.arg
        if name == "rng" or name.endswith("_rng") or name == "seed" \
                or name.endswith("_seed"):
            names.add(name)
    return names


def _references(node: ast.AST, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


def _none_guards(func: ast.AST, params: set[str]) -> set[ast.If]:
    """``if <param> is None:`` blocks inside ``func``."""
    guards: set[ast.If] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id in params
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            guards.add(node)
    return guards


@register
class DisconnectedGenerator(Rule):
    code = "VPL201"
    name = "disconnected-generator"
    summary = "function with an rng/seed parameter builds an unrelated generator"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _rng_params(func)
            if not params:
                continue
            guarded: set[ast.Call] = set()
            for guard in _none_guards(func, params):
                for sub in ast.walk(guard):
                    if isinstance(sub, ast.Call):
                        guarded.add(sub)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolver.resolve_call(node)
                if dotted not in GENERATOR_FACTORIES:
                    continue
                if not node.args and not node.keywords:
                    continue  # argless is VPL102's finding, not a duplicate
                if _references(node, params):
                    continue  # derived from the injected source
                if node in guarded:
                    continue  # seeded fallback under `if rng is None:`
                yield self.diagnostic(
                    module,
                    node,
                    "this function receives "
                    f"{'/'.join(sorted(params))} but builds a generator "
                    "disconnected from it; derive from the injected source "
                    "(or guard a seeded fallback with `if rng is None:`)",
                )


@register
class HandForgedSeedChild(Rule):
    code = "VPL202"
    name = "hand-forged-seed-child"
    summary = "SeedSequence child built via spawn_key instead of .spawn()"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.resolver.resolve_call(node) != "numpy.random.SeedSequence":
                continue
            if any(kw.arg == "spawn_key" for kw in node.keywords):
                yield self.diagnostic(
                    module,
                    node,
                    "SeedSequence(spawn_key=...) hand-forges a child stream; "
                    "children must come from parent.spawn() so the entropy "
                    "tree stays auditable (suppress only with a documented "
                    "O(1)-addressing justification)",
                )


__all__ = ["DisconnectedGenerator", "GENERATOR_FACTORIES", "HandForgedSeedChild"]
