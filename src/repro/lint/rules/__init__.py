"""Rule registry for the invariant checker.

Each rule is a small class with a ``VPLxxx`` code, a one-line summary,
and a ``check`` method yielding :class:`~repro.lint.diagnostics.Diagnostic`
records for one parsed module.  Families group by hundreds digit:

* **VPL1xx** — determinism (global RNG state, wall clocks, float ``==``);
* **VPL2xx** — seed discipline (injected generators, ``SeedSequence``);
* **VPL3xx** — concurrency (lock-guarded mutation, mutable defaults);
* **VPL4xx** — observability & cache hygiene (metric names, schema lock).

Importing this package registers every built-in rule; tests register
throwaway rules through :func:`register` directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, Mapping, Type

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import module_name
from repro.lint.resolver import ImportResolver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import CallGraph


@dataclass
class ModuleContext:
    """Everything a module-local rule may inspect about one source file.

    ``path`` is repo-relative POSIX (the unit config scopes match
    against); ``root`` is the absolute repo root for rules that need
    sibling files (the schema-lock check).
    """

    path: str
    tree: ast.Module
    source: str
    config: LintConfig
    root: str = "."
    _resolver: ImportResolver | None = field(default=None, repr=False)

    @property
    def resolver(self) -> ImportResolver:
        if self._resolver is None:
            modname, is_package = module_name(self.path)
            self._resolver = ImportResolver(
                self.tree, modname, is_package=is_package
            )
        return self._resolver


@dataclass
class ProjectContext:
    """Everything a whole-program rule may inspect.

    Built from per-module summaries (never raw trees), so project rules
    run identically on a cold parse and on a warm cache restore.
    """

    config: LintConfig
    root: str
    #: path -> module summary (see :mod:`repro.lint.dataflow`).
    summaries: Mapping[str, Mapping[str, Any]]
    callgraph: "CallGraph"


class Rule:
    """Base class: subclasses set ``code``/``name``/``summary``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that sees the whole program, not one module.

    Project rules run every lint pass over the (possibly cache-restored)
    summaries; they are cheap by construction because the per-module
    extraction already happened.  ``check`` is a no-op so a project rule
    registered in the shared registry never double-reports.
    """

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(self, context: ProjectContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def at(
        self, path: str, line: int, col: int, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=path, line=line, col=col, code=self.code, message=message
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> Mapping[str, Rule]:
    return dict(_REGISTRY)


def iter_rules() -> Iterable[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def iter_module_rules() -> Iterable[Rule]:
    """Rules that inspect one module at a time (cacheable per file)."""
    return [rule for rule in iter_rules() if not isinstance(rule, ProjectRule)]


def iter_project_rules() -> Iterable["ProjectRule"]:
    """Rules that inspect the whole program (re-run every pass)."""
    return [rule for rule in iter_rules() if isinstance(rule, ProjectRule)]


# Importing the families populates the registry as a side effect.
from repro.lint.rules import (  # noqa: E402
    concurrency,
    determinism,
    hygiene,
    interprocedural,
    seeds,
)

__all__ = [
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "concurrency",
    "determinism",
    "hygiene",
    "interprocedural",
    "iter_module_rules",
    "iter_project_rules",
    "iter_rules",
    "register",
    "seeds",
]
