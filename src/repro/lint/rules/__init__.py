"""Rule registry for the invariant checker.

Each rule is a small class with a ``VPLxxx`` code, a one-line summary,
and a ``check`` method yielding :class:`~repro.lint.diagnostics.Diagnostic`
records for one parsed module.  Families group by hundreds digit:

* **VPL1xx** — determinism (global RNG state, wall clocks, float ``==``);
* **VPL2xx** — seed discipline (injected generators, ``SeedSequence``);
* **VPL3xx** — concurrency (lock-guarded mutation, mutable defaults);
* **VPL4xx** — observability & cache hygiene (metric names, schema lock).

Importing this package registers every built-in rule; tests register
throwaway rules through :func:`register` directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Type

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.resolver import ImportResolver


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file.

    ``path`` is repo-relative POSIX (the unit config scopes match
    against); ``root`` is the absolute repo root for rules that need
    sibling files (the schema-lock check).
    """

    path: str
    tree: ast.Module
    source: str
    config: LintConfig
    root: str = "."
    _resolver: ImportResolver | None = field(default=None, repr=False)

    @property
    def resolver(self) -> ImportResolver:
        if self._resolver is None:
            self._resolver = ImportResolver(self.tree)
        return self._resolver


class Rule:
    """Base class: subclasses set ``code``/``name``/``summary``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> Mapping[str, Rule]:
    return dict(_REGISTRY)


def iter_rules() -> Iterable[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


# Importing the families populates the registry as a side effect.
from repro.lint.rules import concurrency, determinism, hygiene, seeds  # noqa: E402

__all__ = [
    "ModuleContext",
    "Rule",
    "all_rules",
    "concurrency",
    "determinism",
    "hygiene",
    "iter_rules",
    "register",
    "seeds",
]
