"""VPL4xx — observability and cache hygiene rules.

* VPL401 — metric names handed to ``counter()`` / ``gauge()`` /
  ``histogram()`` must be grep-able: either a string literal matching
  the registered-name pattern (``vprofile_*``) or a named constant.
  Dynamically composed names (f-strings, concatenation, ``.format``,
  subscripts) fragment the metric namespace and defeat
  ``preregister_pipeline_metrics``'s stable-export guarantee.
* VPL402 — the capture-cache key surface (dataclass field layouts and
  key-construction functions in the watched files) is fingerprinted
  against ``capture_schema.json``; any drift without a
  ``CACHE_SCHEMA_VERSION`` bump is an invalidation bug waiting to serve
  stale archives.  VPL402 is a *project* rule: its verdict depends on
  files other than the anchoring module, so it must be recomputed every
  pass and never served from the per-module analysis cache.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from repro.lint import fingerprint as fp
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    register,
)

REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _metric_name_arg(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


@register
class MetricNameLiteral(Rule):
    code = "VPL401"
    name = "metric-name-literal"
    summary = "metric name must be a literal or named constant"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        pattern = re.compile(module.config.metric_name_pattern)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in REGISTRY_FACTORIES
            ):
                continue
            name = _metric_name_arg(node)
            if name is None:
                continue
            if isinstance(name, ast.Constant) and isinstance(name.value, str):
                if not pattern.match(name.value):
                    yield self.diagnostic(
                        module,
                        name,
                        f"metric name {name.value!r} does not match the "
                        f"registered-name pattern "
                        f"{module.config.metric_name_pattern!r}",
                    )
            elif not isinstance(name, (ast.Name, ast.Attribute)):
                yield self.diagnostic(
                    module,
                    name,
                    "dynamically composed metric name; use a string literal "
                    "or an ALL_CAPS module constant so the namespace stays "
                    "grep-able and pre-registerable",
                )


@register
class CacheSchemaLock(ProjectRule):
    code = "VPL402"
    name = "cache-schema-lock"
    summary = "cache key surface changed without a schema-version bump"

    def check_project(self, context: ProjectContext) -> Iterator[Diagnostic]:
        config = context.config
        summary = context.summaries.get(config.schema_version_file)
        if summary is None:
            return  # the watched module is not part of this lint run
        root = Path(context.root)
        constant = summary.get("constants", {}).get(
            config.schema_version_constant
        )
        line = constant["line"] if constant else 1
        path = config.schema_version_file
        lock = fp.read_lock(root, config)
        refresh = "run `python -m repro.lint --update-schema-lock` to re-record"
        if lock is None:
            yield self.at(
                path, line, 0,
                f"schema lock {config.schema_lock} is missing or unreadable; "
                f"{refresh}",
            )
            return
        current = fp.schema_fingerprint(root, config)
        version = fp.current_schema_version(root, config)
        if current != lock.get("fingerprint"):
            if version == lock.get("schema_version"):
                yield self.at(
                    path, line, 0,
                    "capture-cache key inputs changed but "
                    f"{config.schema_version_constant} did not; bump it so "
                    f"stale entries miss, then {refresh}",
                )
            else:
                yield self.at(
                    path, line, 0,
                    f"capture-cache key inputs changed; {refresh}",
                )
        elif version != lock.get("schema_version"):
            yield self.at(
                path, line, 0,
                f"{config.schema_version_constant} ({version}) disagrees with "
                f"the schema lock ({lock.get('schema_version')}); {refresh}",
            )


__all__ = ["CacheSchemaLock", "MetricNameLiteral", "REGISTRY_FACTORIES"]
