"""VPL1xx — determinism rules.

The reproduction's byte-identical-traces guarantee dies the moment a
code path consults global RNG state or a process clock.  These rules pin
the conventions down:

* VPL101 — no legacy ``numpy.random`` module-level calls (they mutate
  the hidden global ``RandomState``);
* VPL102 — no argless ``default_rng()`` / ``seed()`` (OS entropy);
* VPL103 — no wall/monotonic clock reads outside ``repro.obs`` and the
  benchmark/test trees (scoped by ``clock-exempt``);
* VPL104 — no ``==`` / ``!=`` against float literals inside
  ``src/repro`` (scoped by ``float-compare-paths``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import matches_any
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ModuleContext, Rule, register

#: Legacy numpy.random module functions backed by the global RandomState.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "uniform", "normal", "standard_normal", "choice",
        "shuffle", "permutation", "beta", "binomial", "bytes", "exponential",
        "gamma", "geometric", "gumbel", "laplace", "logistic", "lognormal",
        "multinomial", "multivariate_normal", "poisson", "rayleigh",
        "triangular", "vonmises", "wald", "weibull", "zipf",
        "get_state", "set_state", "RandomState",
    }
)

#: Entropy-free spellings that are always allowed.
SEEDABLE_NP_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence",
                                "PCG64", "Philox", "SFC64", "MT19937",
                                "BitGenerator"})

#: Canonical dotted names of process clock reads.
CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


def _np_random_member(dotted: str) -> str | None:
    """The member name when ``dotted`` is ``numpy.random.<member>``."""
    if dotted.startswith("numpy.random."):
        member = dotted[len("numpy.random."):]
        if "." not in member:
            return member
    return None


@register
class NumpyGlobalRandom(Rule):
    code = "VPL101"
    name = "numpy-global-random"
    summary = "legacy numpy.random call mutates hidden global RNG state"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolver.resolve_call(node)
            if dotted is None:
                continue
            member = _np_random_member(dotted)
            if member in LEGACY_NP_RANDOM:
                yield self.diagnostic(
                    module,
                    node,
                    f"numpy.random.{member} uses the hidden global RandomState; "
                    "draw from an injected numpy.random.Generator instead",
                )


@register
class ArglessGenerator(Rule):
    code = "VPL102"
    name = "argless-default-rng"
    summary = "argless default_rng()/seed() pulls OS entropy"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            dotted = module.resolver.resolve_call(node)
            if dotted in ("numpy.random.default_rng", "numpy.random.seed",
                          "numpy.random.RandomState", "random.seed"):
                short = dotted.rsplit(".", 1)[1]
                yield self.diagnostic(
                    module,
                    node,
                    f"argless {short}() seeds from OS entropy, which is "
                    "nondeterministic; pass an explicit seed or SeedSequence",
                )


@register
class WallClockRead(Rule):
    code = "VPL103"
    name = "stray-clock-read"
    summary = "clock read outside repro.obs"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if matches_any(module.path, module.config.clock_exempt):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolver.resolve_call(node)
            if dotted in CLOCK_CALLS:
                yield self.diagnostic(
                    module,
                    node,
                    f"{dotted}() leaks wall-clock state into a deterministic "
                    "path; route timing through repro.obs (obs.clock / spans)",
                )


@register
class FloatLiteralEquality(Rule):
    code = "VPL104"
    name = "float-literal-equality"
    summary = "exact == / != against a float literal"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not matches_any(module.path, module.config.float_compare_paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                yield self.diagnostic(
                    module,
                    node,
                    "exact equality against a float literal is representation-"
                    "dependent; use math.isclose/np.isclose, or suppress with "
                    "a justifying comment when exactness is the point",
                )


__all__ = [
    "ArglessGenerator",
    "CLOCK_CALLS",
    "FloatLiteralEquality",
    "LEGACY_NP_RANDOM",
    "NumpyGlobalRandom",
    "SEEDABLE_NP_RANDOM",
    "WallClockRead",
]
