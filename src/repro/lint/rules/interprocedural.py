"""Whole-program rules: lockset, async-lock, executor-boundary, taint.

These rules run over the project's module summaries and call graph (one
shared parse pass, cache-restorable) instead of a single module's AST —
the bugs they target are exactly the ones a per-file checker cannot see:

* **VPL310** — an attribute written under a lock in one method must not
  be read or written without it in *another* method of the same class.
  The historical ``workers.py`` lost-update race had this shape: the
  Algorithm-4 tally was mutated under ``_update_lock`` in
  ``_classify_batch`` but torn elsewhere.  A helper whose every project
  call site already holds the guarding lock inherits it through the
  call graph, so the rule generalises (not just duplicates) VPL301.
* **VPL311** — a *sync* ``threading`` lock held across an ``await`` or
  a (transitively) blocking call inside ``async def``.  The coroutine
  suspends still holding the lock; the next task that tries to acquire
  it blocks the event loop thread, freezing every tenant of the fleet
  gateway at once.
* **VPL320** — arguments crossing a ``ProcessPoolExecutor`` boundary
  (``submit``/``map`` on a process pool) must not carry locks, open
  file handles, ``SharedMemory`` segments, or live ``Generator`` state.
  Locks/files arrive dead or unpicklable in the child; a pickled
  generator forks its stream and silently diverges from the serial
  trace.  Plain descriptors (``ShmChunk``, ``(seed, index)`` tuples)
  are the blessed currency.
* **VPL210** — every ``numpy.random.Generator`` reaching a synthesis /
  extraction sink must trace back — through the call graph — to a
  ``SeedSequence.spawn`` (or a configured spawn-equivalent factory such
  as ``message_seed``).  A literal-seeded or hand-rooted generator at a
  sink reuses one stream across messages and breaks the per-message
  entropy tree that makes traces byte-identical across job counts.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional

from fnmatch import fnmatch

from repro.lint.callgraph import CallGraph, FunctionNode
from repro.lint.dataflow import (
    PARAM_PREFIX,
    SETUP_METHODS,
    TAG_GEN_GUARDED,
    TAG_GEN_SPAWNED,
    TAG_GEN_UNSPAWNED,
    TAG_SPAWNED,
    TAG_SS_RAW,
)
from repro.lint.config import matches_any
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ProjectContext, ProjectRule, register


@register
class CrossMethodLockset(ProjectRule):
    code = "VPL310"
    name = "cross-method-lockset"
    summary = "attribute guarded by a lock in one method, touched bare in another"

    def check_project(self, context: ProjectContext) -> Iterator[Diagnostic]:
        graph = context.callgraph
        for path in sorted(context.summaries):
            if not matches_any(path, context.config.lockset_paths):
                continue
            summary = context.summaries[path]
            for cls_name in sorted(summary.get("classes", {})):
                cls = summary["classes"][cls_name]
                if not cls.get("lock_attrs"):
                    continue
                yield from self._check_class(
                    graph, summary, path, cls_name
                )

    def _check_class(
        self,
        graph: CallGraph,
        summary: Mapping[str, Any],
        path: str,
        cls_name: str,
    ) -> Iterator[Diagnostic]:
        module = summary["module"]
        methods = {
            qual: record
            for qual, record in summary["functions"].items()
            if record.get("cls") == cls_name
        }
        # 1. The guarded set: attr -> (locks it is written under, where).
        guarded: dict[str, dict[str, Any]] = {}
        for qual, record in methods.items():
            if record["name"] in SETUP_METHODS:
                continue
            for access in record.get("attrs", ()):
                if access["kind"] in ("write", "augwrite") and access["locks"]:
                    entry = guarded.setdefault(
                        access["attr"], {"locks": set(), "where": None}
                    )
                    entry["locks"].update(access["locks"])
                    if entry["where"] is None:
                        entry["where"] = (record["name"], access["line"])
        if not guarded:
            return
        # 2. Methods that inherit the lock through their callers.
        inherited: dict[frozenset[str], frozenset[str]] = {}
        for attr in sorted(guarded):
            locks = frozenset(guarded[attr]["locks"])
            if locks not in inherited:
                inherited[locks] = graph.methods_called_only_under(
                    module, cls_name, locks
                )
        # 3. Any bare touch of a guarded attr in a non-setup method fires.
        for qual in sorted(methods):
            record = methods[qual]
            if record["name"] in SETUP_METHODS:
                continue
            qualname = f"{module}.{qual}"
            for access in record.get("attrs", ()):
                attr = access["attr"]
                if attr not in guarded:
                    continue
                locks = frozenset(guarded[attr]["locks"])
                if set(access["locks"]) & locks:
                    continue
                if qualname in inherited[locks]:
                    continue  # every call site already holds the lock
                where_method, where_line = guarded[attr]["where"]
                if where_method == record["name"] \
                        and access["kind"] == "augwrite":
                    # Same-method bare augmented writes are VPL301's
                    # finding; keep the cross-method rule additive.
                    continue
                lock_names = " / ".join(sorted(locks))
                yield self.at(
                    path,
                    access["line"],
                    access["col"],
                    f"self.{attr} is written under {lock_names} in "
                    f"{cls_name}.{where_method}() (line {where_line}) but "
                    f"{'written' if access['kind'] != 'read' else 'read'} "
                    f"here without it; concurrent workers can tear or lose "
                    "the update (lockset resolved through the call graph)",
                )


@register
class LockAcrossAwait(ProjectRule):
    code = "VPL311"
    name = "lock-across-await"
    summary = "sync lock held across an await or blocking call in async code"

    def check_project(self, context: ProjectContext) -> Iterator[Diagnostic]:
        graph = context.callgraph
        may_block = graph.may_block()
        for node in graph.iter_functions():
            if not matches_any(node.path, context.config.async_paths):
                continue
            if not node.is_async:
                continue
            record = node.record
            for awaited in record.get("awaits", ()):
                if awaited["locks"]:
                    held = " / ".join(sorted(awaited["locks"]))
                    yield self.at(
                        node.path,
                        awaited["line"],
                        awaited["col"],
                        f"await while holding sync lock {held}: the "
                        "coroutine suspends with the lock taken and the "
                        "next acquirer blocks the event-loop thread; use "
                        "asyncio.Lock (async with) or release before "
                        "awaiting",
                    )
            for blocking in record.get("blocking", ()):
                if blocking["locks"]:
                    held = " / ".join(sorted(blocking["locks"]))
                    yield self.at(
                        node.path,
                        blocking["line"],
                        blocking["col"],
                        f"{blocking['what']} while holding sync lock {held} "
                        "inside an async def stalls the whole event loop; "
                        "move the blocking work to the executor and drop "
                        "the lock across it",
                    )
            for call in record.get("calls", ()):
                if not call.get("locks") or call.get("awaited"):
                    continue
                callee = graph.resolve_call(node, call)
                if callee is None or callee not in may_block:
                    continue
                if self._direct_block_line(record, call):
                    continue  # already reported as a blocking record
                held = " / ".join(sorted(call["locks"]))
                yield self.at(
                    node.path,
                    call["line"],
                    call["col"],
                    f"call into {callee}() while holding sync lock {held}: "
                    "the callee (transitively) makes a blocking call, "
                    "stalling the event loop with the lock taken",
                )

    @staticmethod
    def _direct_block_line(
        record: Mapping[str, Any], call: Mapping[str, Any]
    ) -> bool:
        return any(
            b["line"] == call["line"] and b["col"] == call["col"]
            for b in record.get("blocking", ())
        )


@register
class ExecutorBoundary(ProjectRule):
    code = "VPL320"
    name = "executor-boundary-safety"
    summary = "lock/file/shm/RNG state crossing a process-executor boundary"

    _EXPLAIN = {
        "lock": "a lock pickles into an unrelated lock in the child — "
        "it guards nothing across processes",
        "file": "an open file handle cannot cross the process boundary; "
        "pass the path and reopen in the worker",
        "shm": "pass the ShmChunk descriptor (name/dtype/lengths), not "
        "the SharedMemory handle — the child must attach and own its "
        "mapping lifecycle",
        "rng": "a pickled Generator forks its stream and diverges from "
        "the serial trace; ship (seed, index) and rebuild via "
        "message_seed/default_rng in the worker",
    }

    def check_project(self, context: ProjectContext) -> Iterator[Diagnostic]:
        for node in context.callgraph.iter_functions():
            if not matches_any(node.path, context.config.executor_paths):
                continue
            for submit in node.record.get("submits", ()):
                for arg in submit.get("args", ()):
                    explain = self._EXPLAIN[arg["tag"]]
                    yield self.at(
                        node.path,
                        arg["line"],
                        arg["col"],
                        f"{arg['expr']!r} carries {arg['tag']} state into "
                        f"ProcessPoolExecutor.{submit['kind']}(); {explain}",
                    )


@register
class SeedProvenance(ProjectRule):
    code = "VPL210"
    name = "seed-provenance-taint"
    summary = "generator reaching a synthesis sink without SeedSequence.spawn provenance"

    #: Ancestry-walk depth bound (call chains deeper than this pass).
    MAX_DEPTH = 12

    def check_project(self, context: ProjectContext) -> Iterator[Diagnostic]:
        graph = context.callgraph
        sinks = context.config.seed_sinks
        for node in graph.iter_functions():
            if not matches_any(node.path, context.config.taint_paths):
                continue
            for call in node.record.get("calls", ()):
                target = call.get("target")
                if target is None or not self._is_sink(target, sinks):
                    continue
                for slot, tag in sorted(call.get("rng_args", {}).items()):
                    yield from self._judge(
                        graph, context, node, call, target, slot, tag, depth=0,
                        visited=set(),
                    )

    @staticmethod
    def _is_sink(target: str, sinks: tuple[str, ...]) -> bool:
        return any(
            fnmatch(target, pattern) if any(ch in pattern for ch in "*?[")
            else target == pattern
            for pattern in sinks
        )

    def _judge(
        self,
        graph: CallGraph,
        context: ProjectContext,
        node: FunctionNode,
        call: Mapping[str, Any],
        target: str,
        slot: str,
        tag: str,
        *,
        depth: int,
        visited: set[tuple[str, str]],
    ) -> Iterator[Diagnostic]:
        if depth > self.MAX_DEPTH:
            return
        if tag in (TAG_GEN_SPAWNED, TAG_GEN_GUARDED, TAG_SPAWNED):
            return
        if tag in (TAG_GEN_UNSPAWNED, TAG_SS_RAW):
            what = (
                "a hand-rooted SeedSequence" if tag == TAG_SS_RAW
                else "a generator with no SeedSequence.spawn provenance"
            )
            yield self.at(
                node.path,
                call["line"],
                call["col"],
                f"{what} flows into {target}(); every sink generator must "
                "derive from the run seed's spawn tree (SeedSequence.spawn "
                "or message_seed) so traces stay byte-identical across "
                "job counts",
            )
            return
        # Parameter provenance: walk every project caller and judge what
        # they actually pass for this parameter.
        param = self._param_of(tag)
        if param is None:
            return
        key = (node.qualname, param)
        if key in visited:
            return
        visited.add(key)
        position = self._param_slot(node, param)
        for caller, caller_call in graph.callers_of(node.qualname):
            passed = self._arg_for(caller_call, position, param, node)
            if passed is None:
                continue  # untracked value (plain data) — not a generator
            yield from self._judge(
                graph, context, caller, caller_call, target, slot, passed,
                depth=depth + 1, visited=visited,
            )

    @staticmethod
    def _param_of(tag: str) -> Optional[str]:
        if tag.startswith("gen_from_" + PARAM_PREFIX):
            return tag[len("gen_from_" + PARAM_PREFIX):]
        if tag.startswith(PARAM_PREFIX):
            return tag[len(PARAM_PREFIX):]
        return None

    @staticmethod
    def _param_slot(node: FunctionNode, param: str) -> Optional[int]:
        params = node.record.get("params", [])
        if param in params:
            index = params.index(param)
            # `self` does not occupy a call-site slot.
            if params and params[0] in ("self", "cls"):
                index -= 1
            return index
        return None

    @staticmethod
    def _arg_for(
        call: Mapping[str, Any],
        position: Optional[int],
        param: str,
        callee: FunctionNode,
    ) -> Optional[str]:
        rng_args = call.get("rng_args", {})
        if param in rng_args:
            return rng_args[param]
        if position is not None and str(position) in rng_args:
            return rng_args[str(position)]
        return None


__all__ = [
    "CrossMethodLockset",
    "ExecutorBoundary",
    "LockAcrossAwait",
    "SeedProvenance",
]
