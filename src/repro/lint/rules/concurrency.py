"""VPL3xx — concurrency rules.

Algorithm-4 online updates mutate the shared profile store from worker
threads; a single unguarded read-modify-write corrupts the voltage
profile every later verdict trusts.  The contract enforced here:

* VPL301 — inside the configured concurrency paths, a class that *owns
  a lock* (any ``self`` attribute assigned a ``threading.Lock`` /
  ``RLock`` / ``Condition`` / ``Semaphore`` constructor) must perform
  every augmented assignment to ``self`` state under a
  ``with self.<lock>:`` block.  Plain single-store assignments are
  exempt: the rule targets the read-modify-write shape that loses
  updates.  The ``lock-attribute-hints`` config additionally recognises
  externally injected locks by attribute name when matching the
  ``with`` context.
* VPL302 — no mutable default arguments anywhere: a shared list/dict/
  set default is cross-call (and cross-thread) shared state.
* VPL303 — no blocking calls inside ``async def`` bodies under the
  configured ``async-paths`` (the fleet gateway's event loop):
  ``time.sleep``, synchronous file I/O (``open``, ``Path.read_text``
  and friends, ``numpy.load``/``save``), and blocking queue
  ``get``/``put``.  One stalled coroutine freezes every tenant on the
  loop; blocking work belongs on the executor
  (``loop.run_in_executor``).  Awaited calls are exempt — ``await
  queue.get()`` is the asyncio queue, not the blocking one.
* VPL304 — every ``multiprocessing.shared_memory.SharedMemory`` created
  under the configured ``shm-paths`` (the zero-copy hand-off in
  ``repro.perf``) must have a cleanup owner on all paths: a ``finally``
  that closes it, the ``pack_arrays`` shape (close+unlink in an
  exception handler *plus* a fall-through close), or ownership handed
  to a managing object (stored on ``self``, as ``SharedArena`` does).
  A leaked mapping pins kernel pages in ``/dev/shm`` for the life of
  the process — invisible in tests, fatal on a fleet gateway.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import matches_any
from repro.lint.dataflow import (
    BLOCKING_CALLS,
    BLOCKING_PATH_METHODS,
    LOCK_CONSTRUCTORS,
    SETUP_METHODS,
    SHARED_MEMORY_CONSTRUCTOR,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ModuleContext, Rule, register


def _attr_root(node: ast.AST) -> ast.AST:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _is_self_attribute(node: ast.AST) -> bool:
    root = _attr_root(node)
    return isinstance(root, ast.Name) and root.id == "self"


class _LockAwareVisitor:
    """Walk one method body tracking whether a self-lock is held."""

    def __init__(self, rule: "UnlockedSharedMutation", module: ModuleContext,
                 lock_attrs: set[str], hints: tuple[str, ...]):
        self.rule = rule
        self.module = module
        self.lock_attrs = lock_attrs
        self.hints = hints
        self.findings: list[Diagnostic] = []

    def _holds_lock(self, stmt: ast.With) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):  # e.g. `with self._lock:` vs acquire()
                expr = expr.func
            if isinstance(expr, ast.Attribute) and _is_self_attribute(expr):
                if expr.attr in self.lock_attrs:
                    return True
                # Externally injected lock recognised by naming convention.
                if any(hint in expr.attr.lower() for hint in self.hints):
                    return True
        return False

    def visit(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            locked = locked or self._holds_lock(node)
        elif isinstance(node, ast.AugAssign) and _is_self_attribute(node.target):
            if not locked:
                self.findings.append(
                    self.rule.diagnostic(
                        self.module,
                        node,
                        f"read-modify-write of {ast.unparse(node.target)} "
                        "outside a `with self.<lock>:` block in a lock-owning "
                        "class; concurrent workers can lose updates",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self.visit(child, locked)


def _lock_attributes(cls: ast.ClassDef, module: ModuleContext) -> set[str]:
    """``self`` attributes assigned a threading-lock constructor."""
    owned: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if module.resolver.resolve_call(value) not in LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) and _is_self_attribute(target):
                owned.add(target.attr)
    return owned


@register
class UnlockedSharedMutation(Rule):
    code = "VPL301"
    name = "unlocked-shared-mutation"
    summary = "augmented self-assignment outside the class's lock"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not matches_any(module.path, module.config.concurrency_paths):
            return
        hints = module.config.lock_attribute_hints
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs = _lock_attributes(cls, module)
            if not lock_attrs:
                continue  # no lock, no locking contract to enforce
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in SETUP_METHODS:
                    continue
                visitor = _LockAwareVisitor(self, module, lock_attrs, hints)
                for stmt in method.body:
                    visitor.visit(stmt, locked=False)
                yield from visitor.findings




def _async_body_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes executed on the event loop by ``func``'s own body.

    Nested function definitions are skipped (their bodies run wherever
    they are later called — typically the executor), and a call that is
    directly awaited is skipped too (awaitables yield, they don't
    block), though its *arguments* are still scanned.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            stack.extend(ast.iter_child_nodes(node.value))
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInAsync(Rule):
    code = "VPL303"
    name = "blocking-call-in-async"
    summary = "blocking call on the event loop inside an async def"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not matches_any(module.path, module.config.async_paths):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(func):
                complaint = self._blocking(module, call)
                if complaint is not None:
                    yield self.diagnostic(
                        module,
                        call,
                        f"{complaint} blocks the event loop inside async "
                        f"{func.name}(); push it through "
                        "loop.run_in_executor instead",
                    )

    def _blocking(self, module: ModuleContext, call: ast.Call) -> str | None:
        dotted = module.resolver.resolve_call(call)
        if dotted in BLOCKING_CALLS:
            return f"{dotted}()"
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return "open()"
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in BLOCKING_PATH_METHODS:
                return f".{attr}()"
            if attr in ("get", "put"):
                receiver = ast.unparse(call.func.value).lower()
                if "queue" in receiver:
                    return f"blocking queue .{attr}()"
        return None


@register
class MutableDefaultArgument(Rule):
    code = "VPL302"
    name = "mutable-default-argument"
    summary = "mutable default argument is shared across calls and threads"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*func.args.defaults, *func.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set", "bytearray")
                ):
                    mutable = True
                if mutable:
                    yield self.diagnostic(
                        module,
                        default,
                        f"mutable default in {func.name}() is evaluated once "
                        "and shared by every call; default to None and build "
                        "inside the body",
                    )




def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes of ``func``'s own body, nested function defs excluded.

    A nested def has its own frame and is scanned on its own walk; a
    segment created there is that function's responsibility.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _close_contexts(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> set[str]:
    """Where ``<name>.close()`` runs: any of ``finally``/``except``/``normal``."""
    contexts: set[str] = set()

    def visit(node: ast.AST, ctx: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            contexts.add(ctx)
        if isinstance(node, ast.Try):
            for child in [*node.body, *node.orelse]:
                visit(child, ctx)
            for handler in node.handlers:
                for child in handler.body:
                    visit(child, "except")
            for child in node.finalbody:
                visit(child, "finally")
            return
        for child in ast.iter_child_nodes(node):
            visit(child, ctx)

    for stmt in func.body:
        visit(stmt, "normal")
    return contexts


def _ownership_transferred(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> bool:
    """Whether ``name`` is stored on ``self`` (a managing object owns it)."""
    for node in _own_nodes(func):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Name) and node.value.id == name):
            continue
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) and _is_self_attribute(target):
                return True
    return False


@register
class LeakedSharedMemory(Rule):
    code = "VPL304"
    name = "leaked-shared-memory"
    summary = "SharedMemory segment without a cleanup owner on every path"

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not matches_any(module.path, module.config.shm_paths):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(module, func)

    def _check_function(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        creations = [
            node
            for node in _own_nodes(func)
            if isinstance(node, ast.Call)
            and module.resolver.resolve_call(node) == SHARED_MEMORY_CONSTRUCTOR
        ]
        if not creations:
            return
        named: list[tuple[str, ast.Call]] = []
        owned: set[int] = set()
        for node in _own_nodes(func):
            if isinstance(node, ast.Assign) and node.value in creations:
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    named.append((node.targets[0].id, node.value))
                    owned.add(id(node.value))
                elif all(
                    isinstance(t, (ast.Attribute, ast.Subscript)) and _is_self_attribute(t)
                    for t in node.targets
                ):
                    owned.add(id(node.value))  # the owning object's lifecycle
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.context_expr in creations:
                        owned.add(id(item.context_expr))
        for call in creations:
            if id(call) not in owned:
                yield self.diagnostic(
                    module,
                    call,
                    "SharedMemory segment handle is discarded at creation; "
                    "bind it to a name and close/unlink it on every path",
                )
        for name, call in named:
            contexts = _close_contexts(func, name)
            if "finally" in contexts:
                continue  # closed no matter how the function exits
            if "except" in contexts and "normal" in contexts:
                continue  # pack_arrays shape: error path + fall-through
            if _ownership_transferred(func, name):
                continue  # a managing object (SharedArena) closes it
            yield self.diagnostic(
                module,
                call,
                f"shared segment {name!r} is not closed on every path: close "
                "it in a finally (or close+unlink in an exception handler "
                "plus the fall-through), or hand ownership to the arena",
            )


__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_PATH_METHODS",
    "BlockingCallInAsync",
    "LOCK_CONSTRUCTORS",
    "LeakedSharedMemory",
    "MutableDefaultArgument",
    "SETUP_METHODS",
    "SHARED_MEMORY_CONSTRUCTOR",
    "UnlockedSharedMutation",
]
