"""Drive the rules over a project; the checker's programmatic API.

The run is two passes over one shared parse:

1. **Per-module analysis** (cacheable, parallelisable): parse the file,
   run every module-local rule, extract the whole-program summary.  The
   incremental cache serves this pass wholesale for unchanged bytes —
   a warm run parses *zero* files — and ``--jobs`` fans it out over a
   thread pool for cold runs.
2. **Project analysis** (always recomputed): build the call graph over
   the summaries and run the interprocedural rules (lockset, async
   locks, executor boundaries, seed provenance, schema lock).  Project
   rules read summaries, never trees, so this pass is identical on a
   cold parse and a warm cache restore — byte-identical diagnostics
   either way.

``lint_source`` lints one in-memory module (the unit-test entry point);
``lint_paths`` is the thin list-of-diagnostics wrapper around
:func:`run_lint`, which returns the full :class:`LintResult` (cache and
parse counters included) for the CLI and tests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence

from repro.lint.cache import AnalysisCache
from repro.lint.callgraph import CallGraph
from repro.lint.config import LintConfig
from repro.lint.dataflow import extract_summary
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import Project, ProjectModule, collect_files
from repro.lint.rules import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
    iter_module_rules,
    iter_project_rules,
)
from repro.lint.suppressions import is_suppressed


@dataclass
class LintResult:
    """A lint run's verdict plus the counters tests and the CLI read."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Paths analyzed from source this run (cache misses + cacheless).
    analyzed: list[str] = field(default_factory=list)
    #: Paths served entirely from the incremental cache.
    restored: list[str] = field(default_factory=list)
    #: ``ast.parse`` invocations — the parse-once regression hook.
    parse_count: int = 0


def _syntax_diagnostic(module: ProjectModule) -> Diagnostic:
    exc = module.syntax_error
    assert exc is not None
    return Diagnostic(
        path=module.path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        code="VPL000",
        message=f"syntax error: {exc.msg}",
    )


def _filter(
    diagnostics: Iterable[Diagnostic],
    config: LintConfig,
    project: Project,
) -> list[Diagnostic]:
    """Apply select/ignore scoping and inline suppressions."""
    kept: list[Diagnostic] = []
    for diagnostic in diagnostics:
        if not config.code_enabled(diagnostic.code, diagnostic.path):
            continue
        module = project.modules.get(diagnostic.path)
        if module is not None and is_suppressed(
            module.suppressions, diagnostic.line, diagnostic.code
        ):
            continue
        kept.append(diagnostic)
    return kept


def _analyze_module(
    project: Project,
    module: ProjectModule,
    module_rules: Sequence[Rule],
) -> tuple[Optional[dict[str, Any]], list[Diagnostic]]:
    """Pass 1 for one module: parse, module rules, summary extraction."""
    tree = project.parse_module(module)
    if tree is None:
        return None, [_syntax_diagnostic(module)]
    context = ModuleContext(
        path=module.path,
        tree=tree,
        source=module.source,
        config=project.config,
        root=str(project.root),
        _resolver=module.resolver,
    )
    found: list[Diagnostic] = []
    for rule in module_rules:
        found.extend(rule.check(context))
    assert module.resolver is not None
    summary = extract_summary(
        tree, module.resolver, project.config, module.path, module.modname
    )
    return summary, _filter(sorted(found), project.config, project)


def analyze_project(
    project: Project,
    *,
    rules: Optional[Iterable[Rule]] = None,
    jobs: Optional[int] = None,
    cache: Optional[AnalysisCache] = None,
) -> LintResult:
    """Run both passes over a loaded project.

    ``rules`` overrides the registry (tests injecting throwaway rules);
    custom rule lists bypass the cache, whose key covers only the
    registered catalogue.
    """
    config = project.config
    if rules is not None:
        rule_list = list(rules)
        module_rules: Sequence[Rule] = [
            rule for rule in rule_list if not isinstance(rule, ProjectRule)
        ]
        project_rules: Sequence[ProjectRule] = [
            rule for rule in rule_list if isinstance(rule, ProjectRule)
        ]
        cache = None
    else:
        module_rules = list(iter_module_rules())
        project_rules = list(iter_project_rules())

    result = LintResult()
    summaries: dict[str, dict[str, Any]] = {}
    module_diags: dict[str, list[Diagnostic]] = {}

    # ------------------------------------------------------------- pass 1
    to_analyze: list[ProjectModule] = []
    for module in project.sorted_modules():
        cached = cache.get(module.path, module.sha) if cache else None
        if cached is not None:
            summary, diagnostics = cached
            if summary:
                summaries[module.path] = summary
            module_diags[module.path] = diagnostics
            result.restored.append(module.path)
        else:
            to_analyze.append(module)

    def run_one(module: ProjectModule) -> None:
        summary, diagnostics = _analyze_module(project, module, module_rules)
        if summary is not None:
            summaries[module.path] = summary
        module_diags[module.path] = diagnostics
        if cache is not None and module.syntax_error is None \
                and summary is not None:
            cache.put(module.path, module.sha, summary, diagnostics)

    workers = max(int(jobs or 1), 1)
    if workers > 1 and len(to_analyze) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(run_one, to_analyze))
    else:
        for module in to_analyze:
            run_one(module)
    result.analyzed = [module.path for module in to_analyze]

    # ------------------------------------------------------------- pass 2
    if project_rules and summaries:
        graph = CallGraph(summaries)
        context = ProjectContext(
            config=config,
            root=str(project.root),
            summaries=summaries,
            callgraph=graph,
        )
        project_found: list[Diagnostic] = []
        for rule in project_rules:
            project_found.extend(rule.check_project(context))
        for diagnostic in _filter(sorted(project_found), config, project):
            module_diags.setdefault(diagnostic.path, []).append(diagnostic)

    if cache is not None:
        cache.prune(set(project.modules))
        cache.save()

    for path in sorted(module_diags):
        result.diagnostics.extend(sorted(module_diags[path]))
    result.diagnostics.sort()
    result.parse_count = project.parse_count
    return result


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def run_lint(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    *,
    root: str | Path = ".",
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> LintResult:
    """Lint every Python file reachable from ``paths``."""
    config = config or LintConfig()
    project = Project.load(paths, config, root=root)
    cache = None
    if use_cache:
        cache = AnalysisCache.load(
            Path(root), config, tuple(sorted(all_rules()))
        )
    return analyze_project(project, jobs=jobs, cache=cache)


def lint_paths(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    *,
    root: str | Path = ".",
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> list[Diagnostic]:
    """Diagnostics-only wrapper around :func:`run_lint`."""
    return run_lint(
        paths, config, root=root, jobs=jobs, use_cache=use_cache
    ).diagnostics


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    *,
    root: str | Path = ".",
    rules: Optional[Iterable[Rule]] = None,
) -> list[Diagnostic]:
    """Lint one module given as text; ``path`` drives the path scoping.

    The module becomes a single-file project, so project rules that can
    conclude from one module (the schema lock, intra-class locksets)
    still run — cross-module evidence simply isn't there to find.
    """
    config = config or LintConfig()
    project = Project.from_sources({path: source}, config, root=root)
    return analyze_project(project, rules=rules).diagnostics


__all__ = [
    "LintResult",
    "analyze_project",
    "collect_files",
    "lint_paths",
    "lint_source",
    "run_lint",
]
