"""Drive the rules over files and trees; the checker's programmatic API.

``lint_source`` lints one in-memory module (the unit-test entry point);
``lint_paths`` walks files and directories, applies the config's
excludes, runs every enabled rule, and filters diagnostics through
select/ignore scoping and inline suppressions.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ModuleContext, Rule, iter_rules
from repro.lint.suppressions import collect_suppressions, is_suppressed

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def collect_files(paths: Iterable[str | Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not SKIP_DIRS.intersection(candidate.parts) \
                        and "egg-info" not in str(candidate):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")
    return sorted(found)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    *,
    root: str | Path = ".",
    rules: Optional[Iterable[Rule]] = None,
) -> list[Diagnostic]:
    """Lint one module given as text; ``path`` drives the path scoping."""
    config = config or LintConfig()
    if config.is_excluded(path):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="VPL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = ModuleContext(
        path=path, tree=tree, source=source, config=config, root=str(root)
    )
    suppressions = collect_suppressions(source)
    diagnostics: list[Diagnostic] = []
    for rule in rules if rules is not None else iter_rules():
        for diagnostic in rule.check(module):
            if not config.code_enabled(diagnostic.code, path):
                continue
            if is_suppressed(suppressions, diagnostic.line, diagnostic.code):
                continue
            diagnostics.append(diagnostic)
    return sorted(diagnostics)


def lint_paths(
    paths: Iterable[str | Path],
    config: Optional[LintConfig] = None,
    *,
    root: str | Path = ".",
) -> list[Diagnostic]:
    """Lint every Python file reachable from ``paths``."""
    config = config or LintConfig()
    root = Path(root)
    diagnostics: list[Diagnostic] = []
    for path in collect_files(paths, root):
        relative = _relative(path, root)
        if config.is_excluded(relative):
            continue
        source = path.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, relative, config, root=root))
    return sorted(diagnostics)


__all__ = ["collect_files", "lint_paths", "lint_source"]
