"""Capture-cache schema fingerprinting (backs rule VPL402).

The :class:`~repro.perf.cache.CaptureCache` content-addresses archives
by hashing dataclass-shaped key inputs (vehicle profile, environment,
transceiver params) together with ``CACHE_SCHEMA_VERSION``.  If a field
is added to one of those dataclasses without bumping the version, stale
entries keyed under the old layout can be served for new inputs.

The fingerprint is a SHA-256 over a canonical JSON encoding of every
``@dataclass`` field layout (name, annotation, default) in the watched
files, plus the key-construction functions in the cache module itself.
``capture_schema.json`` records the blessed (fingerprint, version) pair;
VPL402 recomputes and compares on every lint run, and
``python -m repro.lint --update-schema-lock`` refreshes the record after
a deliberate, version-bumped change.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Optional

from repro.lint.config import LintConfig

#: Key-construction functions fingerprinted alongside the dataclasses.
KEY_FUNCTIONS = ("capture_cache_key", "_jsonable", "stable_digest")


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return isinstance(target, ast.Name) and target.id == "dataclass"


def _dataclass_fields(cls: ast.ClassDef) -> list[dict[str, Any]]:
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append(
                {
                    "name": stmt.target.id,
                    "annotation": ast.unparse(stmt.annotation),
                    "default": ast.unparse(stmt.value) if stmt.value else None,
                }
            )
    return fields


def _file_schema(path: Path, want_functions: bool) -> dict[str, Any]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    schema: dict[str, Any] = {"dataclasses": {}, "functions": {}}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            _is_dataclass_decorator(d) for d in node.decorator_list
        ):
            schema["dataclasses"][node.name] = _dataclass_fields(node)
    if want_functions:
        for node in tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in KEY_FUNCTIONS
            ):
                schema["functions"][node.name] = ast.unparse(node)
    return schema


def schema_fingerprint(root: Path, config: LintConfig) -> str:
    """SHA-256 hex digest of the watched cache-key surface."""
    payload: dict[str, Any] = {}
    for rel in sorted(config.schema_watch):
        path = Path(root) / rel
        if not path.exists():
            payload[rel] = None
            continue
        payload[rel] = _file_schema(
            path, want_functions=(rel == config.schema_version_file)
        )
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def current_schema_version(root: Path, config: LintConfig) -> Optional[int]:
    """The integer bound to the version constant, if parseable."""
    path = Path(root) / config.schema_version_file
    if not path.exists():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == config.schema_version_constant
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value
    return None


def read_lock(root: Path, config: LintConfig) -> Optional[dict[str, Any]]:
    path = Path(root) / config.schema_lock
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    return data


def update_lock(root: Path, config: LintConfig) -> Path:
    """Record the current (version, fingerprint) pair; returns the path."""
    path = Path(root) / config.schema_lock
    payload = {
        "schema_version": current_schema_version(root, config),
        "fingerprint": schema_fingerprint(root, config),
        "watched": sorted(config.schema_watch),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


__all__ = [
    "KEY_FUNCTIONS",
    "current_schema_version",
    "read_lock",
    "schema_fingerprint",
    "update_lock",
]
