"""Checker configuration, loaded from ``[tool.repro-lint]`` in pyproject.

Every knob has a default tuned for this repository, so the checker works
with no configuration at all; the pyproject section only narrows or
widens scopes.  Paths are repo-relative POSIX strings and may be either
directory prefixes (``src/repro/obs``) or ``fnmatch`` globs
(``tests/fixtures/*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ReproError

try:  # py311+; older interpreters fall back to the built-in defaults
    import tomllib
except ImportError:  # pragma: no cover - py39/py310 without tomli
    tomllib = None  # type: ignore[assignment]


class LintConfigError(ReproError):
    """Malformed ``[tool.repro-lint]`` section."""


def _match(path: str, pattern: str) -> bool:
    """Glob match, or prefix match for plain directory patterns."""
    if any(ch in pattern for ch in "*?["):
        return fnmatch(path, pattern)
    pattern = pattern.rstrip("/")
    return path == pattern or path.startswith(pattern + "/")


def matches_any(path: str, patterns: Sequence[str]) -> bool:
    return any(_match(path, pattern) for pattern in patterns)


@dataclass
class LintConfig:
    """Scopes and switches for the invariant rules.

    Attributes
    ----------
    select / ignore:
        Rule codes (or prefixes like ``VPL1``) to run / skip; an empty
        ``select`` means every registered rule.
    exclude:
        Files never linted at all (generated code, fixtures).
    per_file_ignores:
        Mapping of path pattern to rule codes skipped for those files.
    clock_exempt:
        Paths where VPL103 (wall-clock reads) does not apply — only the
        three ``repro.obs`` core modules that *implement* the clock
        funnel (``clock`` / ``spans`` / ``events``), the linter itself,
        and benchmarks, which measure time on purpose.  Everything else
        in ``repro.obs`` (time-series store, health monitor, recorder,
        server) must route through ``repro.obs.clock`` like any other
        subsystem.
    float_compare_paths:
        Paths where VPL104 (float ``==``) applies; library code only,
        tests legitimately assert exact expected floats.
    concurrency_paths:
        Paths whose lock-owning classes get the VPL30x treatment.
    async_paths:
        Paths whose ``async def`` bodies are checked for blocking calls
        (VPL303) — the event-loop code of the fleet gateway.
    shm_paths:
        Paths where VPL304 audits ``SharedMemory`` lifecycles — the
        zero-copy hand-off code in ``repro.perf``.
    lockset_paths:
        Paths whose lock-owning classes get the interprocedural VPL310
        lockset analysis (an attribute written under a lock in one
        method must not be touched without it in another, resolved
        through the call graph).
    executor_paths:
        Paths where VPL320 audits process-executor boundaries.
    taint_paths:
        Paths where VPL210 traces seed provenance into synthesis sinks.
    executor_factories:
        Dotted call targets whose result is a process-pool executor
        (``repro.perf.parallel.get_pool`` alongside the stdlib
        constructor).
    seed_factories:
        Dotted call targets blessed as ``SeedSequence.spawn``
        equivalents (the O(1) ``message_seed`` family).
    seed_sinks:
        Dotted targets (fnmatch patterns allowed) of synthesis /
        extraction entry points whose generator arguments VPL210 audits.
    baseline:
        The checked-in baseline file waiving pre-existing findings
        (``repro lint --baseline``).
    cache_dir:
        Directory of the incremental analysis cache, relative to root.
    lock_attribute_hints:
        Substrings identifying lock-like ``self`` attributes
        (``_update_lock``, ``_idle`` condition, ...).
    metric_name_pattern:
        Regex every literal metric name must match (VPL401).
    schema_version_file / schema_version_constant:
        Where the capture-cache schema version lives (VPL402).
    schema_watch:
        Files whose dataclass field layout feeds the cache key; any
        change must bump the schema version.
    schema_lock:
        The fingerprint lock file recording the blessed layout.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ("src/repro.egg-info",)
    per_file_ignores: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    clock_exempt: tuple[str, ...] = (
        "src/repro/obs/clock.py",
        "src/repro/obs/spans.py",
        "src/repro/obs/events.py",
        "src/repro/lint",
        "benchmarks",
        "examples",
        "tests",
    )
    float_compare_paths: tuple[str, ...] = ("src/repro",)
    concurrency_paths: tuple[str, ...] = ("src/repro/stream",)
    async_paths: tuple[str, ...] = ("src/repro/fleet",)
    shm_paths: tuple[str, ...] = ("src/repro/perf",)
    lockset_paths: tuple[str, ...] = (
        "src/repro/stream",
        "src/repro/fleet",
        "src/repro/perf",
        "src/repro/obs",
    )
    executor_paths: tuple[str, ...] = ("src/repro",)
    taint_paths: tuple[str, ...] = ("src/repro",)
    executor_factories: tuple[str, ...] = ("repro.perf.parallel.get_pool",)
    seed_factories: tuple[str, ...] = (
        "repro.perf.parallel.message_seed",
        "repro.perf.parallel.spawn_seeds",
        "repro.perf.parallel.rngs_for_slice",
        "repro.perf.message_seed",
        "repro.perf.spawn_seeds",
        "repro.perf.rngs_for_slice",
    )
    seed_sinks: tuple[str, ...] = (
        "repro.analog.waveform.synthesize_waveform",
        "repro.perf.batch.synthesize_waveform_batch",
        "repro.perf.batch.synthesize_waveform_matrix",
        "repro.analog.synthesize_waveform",
        "repro.perf.synthesize_waveform_batch",
        "repro.perf.synthesize_waveform_matrix",
    )
    baseline: str = "lint-baseline.json"
    cache_dir: str = ".repro_lint_cache"
    lock_attribute_hints: tuple[str, ...] = ("lock", "cond", "idle", "mutex")
    metric_name_pattern: str = r"^vprofile_[a-z][a-z0-9_]*$"
    schema_version_file: str = "src/repro/perf/cache.py"
    schema_version_constant: str = "CACHE_SCHEMA_VERSION"
    schema_watch: tuple[str, ...] = (
        "src/repro/perf/cache.py",
        "src/repro/vehicles/profiles.py",
        "src/repro/analog/environment.py",
        "src/repro/analog/transceiver.py",
    )
    schema_lock: str = "src/repro/lint/capture_schema.json"

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Stable hash of every knob — part of the analysis cache key."""
        import hashlib
        import json
        from dataclasses import fields

        payload = {
            f.name: (
                dict(getattr(self, f.name))
                if isinstance(getattr(self, f.name), Mapping)
                else getattr(self, f.name)
            )
            for f in fields(self)
        }
        canonical = json.dumps(payload, sort_keys=True, default=list)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def is_excluded(self, path: str) -> bool:
        return matches_any(path, self.exclude)

    def code_enabled(self, code: str, path: str) -> bool:
        """Apply select/ignore plus per-file ignores to one diagnostic."""
        if self.select and not any(code.startswith(s) for s in self.select):
            return False
        if any(code.startswith(s) for s in self.ignore):
            return False
        for pattern, codes in self.per_file_ignores.items():
            if _match(path, pattern) and any(code.startswith(c) for c in codes):
                return False
        return True


_LIST_FIELDS = {
    "select": "select",
    "ignore": "ignore",
    "exclude": "exclude",
    "clock-exempt": "clock_exempt",
    "float-compare-paths": "float_compare_paths",
    "concurrency-paths": "concurrency_paths",
    "async-paths": "async_paths",
    "shm-paths": "shm_paths",
    "lockset-paths": "lockset_paths",
    "executor-paths": "executor_paths",
    "taint-paths": "taint_paths",
    "executor-factories": "executor_factories",
    "seed-factories": "seed_factories",
    "seed-sinks": "seed_sinks",
    "lock-attribute-hints": "lock_attribute_hints",
    "schema-watch": "schema_watch",
}
_STR_FIELDS = {
    "metric-name-pattern": "metric_name_pattern",
    "schema-version-file": "schema_version_file",
    "schema-version-constant": "schema_version_constant",
    "schema-lock": "schema_lock",
    "baseline": "baseline",
    "cache-dir": "cache_dir",
}


def _string_list(key: str, value: Any) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise LintConfigError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def config_from_mapping(section: Mapping[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a decoded ``[tool.repro-lint]``."""
    config = LintConfig()
    for key, value in section.items():
        if key in _LIST_FIELDS:
            setattr(config, _LIST_FIELDS[key], _string_list(key, value))
        elif key in _STR_FIELDS:
            if not isinstance(value, str):
                raise LintConfigError(f"[tool.repro-lint] {key} must be a string")
            setattr(config, _STR_FIELDS[key], value)
        elif key == "per-file-ignores":
            if not isinstance(value, Mapping):
                raise LintConfigError(
                    "[tool.repro-lint] per-file-ignores must be a table"
                )
            config.per_file_ignores = {
                pattern: _string_list(pattern, codes)
                for pattern, codes in value.items()
            }
        else:
            raise LintConfigError(f"unknown [tool.repro-lint] key: {key!r}")
    return config


def load_config(root: Path) -> LintConfig:
    """Read ``<root>/pyproject.toml``; defaults when absent or untooled."""
    pyproject = Path(root) / "pyproject.toml"
    if tomllib is None or not pyproject.exists():
        return LintConfig()
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro-lint", {})
    return config_from_mapping(section)


__all__ = [
    "LintConfig",
    "LintConfigError",
    "config_from_mapping",
    "load_config",
    "matches_any",
]
