"""Checked-in baseline: adopt new rules without a big-bang cleanup.

A baseline entry waives one *specific pre-existing finding* —
identified by ``(path, code, message)``, deliberately not by line
number, so unrelated edits above a finding do not break the waiver.
Identical findings in one file are counted: a baseline recording two
occurrences waives at most two, and a third (new) occurrence still
fails the build.

``repro lint --update-baseline`` records the current findings;
``repro lint --baseline`` (the CI mode) reports only findings absent
from the record.  Waived findings are not invisible — the text report
prints a waived-count summary and the SARIF output carries them with a
``suppressions`` entry — and entries whose finding has been fixed are
listed as stale so the baseline ratchets monotonically toward empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic

BASELINE_VERSION = 1


def _key(diagnostic: Diagnostic) -> tuple[str, str, str]:
    return (diagnostic.path, diagnostic.code, diagnostic.message)


@dataclass
class BaselineResult:
    """Split of a lint run against the baseline."""

    new: list[Diagnostic] = field(default_factory=list)
    waived: list[Diagnostic] = field(default_factory=list)
    #: Baseline entries with no matching finding anymore (fixed).
    stale: list[tuple[str, str, str]] = field(default_factory=list)


class Baseline:
    """The waived-findings record (a multiset of finding keys)."""

    def __init__(self, counts: Optional[dict[tuple[str, str, str], int]] = None):
        self.counts = counts or {}

    # ------------------------------------------------------------------
    @classmethod
    def from_diagnostics(cls, diagnostics: Sequence[Diagnostic]) -> "Baseline":
        counts: dict[tuple[str, str, str], int] = {}
        for diagnostic in diagnostics:
            key = _key(diagnostic)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, root: Path, config: LintConfig) -> Optional["Baseline"]:
        """The checked-in baseline, or ``None`` when absent/corrupt."""
        path = Path(root) / config.baseline
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("version") != BASELINE_VERSION:
            return None
        counts: dict[tuple[str, str, str], int] = {}
        for entry in payload.get("findings", []):
            try:
                key = (entry["path"], entry["code"], entry["message"])
                count = int(entry.get("count", 1))
            except (KeyError, TypeError, ValueError):
                continue
            counts[key] = counts.get(key, 0) + max(count, 1)
        return cls(counts)

    def save(self, root: Path, config: LintConfig) -> Path:
        path = Path(root) / config.baseline
        findings = [
            {"path": p, "code": c, "message": m, "count": n}
            for (p, c, m), n in sorted(self.counts.items())
        ]
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Waived pre-existing lint findings; regenerate with "
                "`python -m repro.lint --update-baseline`. New findings "
                "never land here silently — fix them or waive inline."
            ),
            "findings": findings,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    # ------------------------------------------------------------------
    def apply(self, diagnostics: Sequence[Diagnostic]) -> BaselineResult:
        """Partition findings into new vs waived; surface stale entries."""
        remaining = dict(self.counts)
        result = BaselineResult()
        for diagnostic in diagnostics:  # sorted order: earliest lines waive
            key = _key(diagnostic)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.waived.append(diagnostic)
            else:
                result.new.append(diagnostic)
        result.stale = sorted(
            key for key, count in remaining.items() if count > 0
        )
        return result


__all__ = ["Baseline", "BaselineResult", "BASELINE_VERSION"]
