"""Best-effort static name resolution for call sites.

The rules care about *what* a call reaches — ``numpy.random.default_rng``
no matter whether the file spelled it ``np.random.default_rng()``,
``numpy.random.default_rng()`` or ``from numpy.random import
default_rng; default_rng()``.  :class:`ImportResolver` builds the alias
table from a module's import statements and canonicalises attribute
chains against it.  Names bound by assignment (``rng = ...``) resolve to
``None`` — the checker never guesses about local dataflow.
"""

from __future__ import annotations

import ast
from typing import Optional


class ImportResolver:
    """Alias table for one module, built from its import statements."""

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # `import a.b.c` binds `a`; `import a.b as ab` binds the path.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay repo-internal
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if imported.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` under
        ``import numpy as np``; a chain rooted in a local variable (or
        ``self``) returns ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)


__all__ = ["ImportResolver"]
