"""Best-effort static name resolution for call sites.

The rules care about *what* a call reaches — ``numpy.random.default_rng``
no matter whether the file spelled it ``np.random.default_rng()``,
``numpy.random.default_rng()`` or ``from numpy.random import
default_rng; default_rng()``.  :class:`ImportResolver` builds the alias
table from a module's import statements and canonicalises attribute
chains against it.  Names bound by assignment (``rng = ...``) resolve to
``None`` — the checker never guesses about local dataflow.

When the resolver knows which module it is reading (the whole-program
:class:`~repro.lint.project.Project` always tells it), relative imports
resolve to absolute dotted paths: ``from .config import matches_any``
inside ``repro.lint.rules.determinism`` becomes
``repro.lint.config.matches_any``.  ``from x import *`` binds nothing
directly — the starred modules are recorded in :attr:`star_imports` so
project-level symbol lookup can fall back to them.
"""

from __future__ import annotations

import ast
from typing import Optional


def _relative_base(module: Optional[str], level: int, is_package: bool) -> Optional[str]:
    """The absolute package a ``level``-deep relative import anchors to.

    Inside module ``a.b.c`` (a plain module in package ``a.b``),
    ``from . import x`` (level 1) anchors at ``a.b`` and ``from .. import
    x`` (level 2) at ``a``; a package ``__init__`` anchors one level
    higher because the module *is* its package.
    """
    if module is None:
        return None
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[:-drop]
    return ".".join(parts)


class ImportResolver:
    """Alias table for one module, built from its import statements."""

    def __init__(
        self,
        tree: ast.Module,
        module: Optional[str] = None,
        *,
        is_package: bool = False,
    ):
        self.module = module
        self.aliases: dict[str, str] = {}
        #: Modules named by ``from x import *`` (absolute dotted paths).
        self.star_imports: tuple[str, ...] = ()
        stars: list[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # `import a.b.c` binds `a`; `import a.b as ab` binds the path.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _relative_base(module, node.level, is_package)
                    if base is None:
                        continue  # relative import without package context
                    source = f"{base}.{node.module}" if node.module else base
                    source = source.lstrip(".")
                elif node.module is not None:
                    source = node.module
                else:  # pragma: no cover - `from import` is a syntax error
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        stars.append(source)
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{source}.{alias.name}"
        self.star_imports = tuple(stars)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if imported.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` under
        ``import numpy as np``; a chain rooted in a local variable (or
        ``self``) returns ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)


__all__ = ["ImportResolver"]
