"""SARIF 2.1.0 serialisation of lint diagnostics.

Static Analysis Results Interchange Format is the lingua franca of
code-scanning UIs (GitHub's security tab, VS Code SARIF viewers); the
CI job uploads the checker's verdict as an artifact in this shape.  One
run object carries:

* the full rule catalogue as ``tool.driver.rules`` (id, name, short
  description, default level), so viewers can group and document
  findings without the repo checked out;
* one ``result`` per diagnostic, with a physical location anchored to
  ``SRCROOT`` (the repo root) so the report is machine-portable;
* baseline-waived findings included with a ``suppressions`` entry of
  kind ``external`` rather than dropped — a SARIF consumer can show or
  hide them, and the waiver stays auditable.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: VPL000 is a parse failure — an error; every invariant rule is a
#: warning by default (CI still fails the build through the exit code).
_ERROR_CODES = frozenset({"VPL000"})


def _rule_entry(rule: Rule) -> dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {
            "level": "error" if rule.code in _ERROR_CODES else "warning",
        },
    }


def _result(
    diagnostic: Diagnostic,
    rule_index: Mapping[str, int],
    *,
    suppressed: bool,
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": "error" if diagnostic.code in _ERROR_CODES else "warning",
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(diagnostic.line, 1),
                        "startColumn": diagnostic.col + 1,
                    },
                }
            }
        ],
    }
    if diagnostic.code in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.code]
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "waived by the checked-in lint baseline",
            }
        ]
    return result


def sarif_report(
    diagnostics: Sequence[Diagnostic],
    rules: Iterable[Rule],
    *,
    waived: Sequence[Diagnostic] = (),
    root_uri: Optional[str] = None,
) -> dict[str, Any]:
    """The SARIF log as a JSON-shaped dict (see :func:`render_sarif`)."""
    catalogue = sorted(rules, key=lambda rule: rule.code)
    rule_index = {rule.code: i for i, rule in enumerate(catalogue)}
    results = [
        _result(d, rule_index, suppressed=False) for d in diagnostics
    ] + [
        _result(d, rule_index, suppressed=True) for d in waived
    ]
    run: dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": "docs/static-analysis.md",
                "rules": [_rule_entry(rule) for rule in catalogue],
            }
        },
        "columnKind": "unicodeCodePoints",
        "results": results,
    }
    if root_uri is not None:
        run["originalUriBaseIds"] = {"SRCROOT": {"uri": root_uri}}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Iterable[Rule],
    *,
    waived: Sequence[Diagnostic] = (),
    root_uri: Optional[str] = None,
) -> str:
    """The SARIF log serialised (stable key order, trailing newline)."""
    report = sarif_report(
        diagnostics, rules, waived=waived, root_uri=root_uri
    )
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "sarif_report"]
