"""Per-module analysis summaries: the currency of whole-program rules.

Interprocedural analysis over raw ASTs would force every lint run to
hold every tree in memory and would make incremental caching impossible
(a cached module has no tree).  Instead, one walk per module distils the
facts the cross-module rules need into a :class:`ModuleSummary` — a
plain-JSON structure that round-trips through the on-disk cache:

* every function/method with its parameters and async-ness;
* every call site, with its best-effort resolved target, the set of
  *sync* locks held at the call, whether it is awaited, and the
  provenance of any randomness-carrying or resource-carrying arguments;
* every ``self`` attribute access in lock-owning classes, tagged with
  the locks held (the VPL310 lockset substrate);
* every ``await`` and blocking call with the locks held across it
  (VPL311);
* every executor-boundary dispatch with argument provenance (VPL320).

Provenance is a deliberately small lattice computed by a single
assignment pass per function — the checker never chases aliasing beyond
straight-line ``name = <expr>`` bindings, so a tag is evidence, not
proof, and the rules phrase their messages accordingly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.lint.config import LintConfig, matches_any
from repro.lint.resolver import ImportResolver

#: Methods allowed to touch self state before the object is shared.
SETUP_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Constructors whose result makes a ``self`` attribute (or local) a lock.
LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Semaphore", "threading.BoundedSemaphore",
        "multiprocessing.Lock", "multiprocessing.RLock",
        "multiprocessing.Condition", "multiprocessing.Semaphore",
    }
)

#: Canonical dotted names of calls that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "numpy.load", "numpy.save",
        "numpy.savez", "numpy.savez_compressed",
        "subprocess.run", "subprocess.check_call", "subprocess.check_output",
        "shutil.rmtree", "shutil.copytree", "shutil.copyfile",
    }
)

#: ``pathlib.Path`` convenience methods that hit the filesystem.
BLOCKING_PATH_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Canonical constructor of a kernel-backed shared segment.
SHARED_MEMORY_CONSTRUCTOR = "multiprocessing.shared_memory.SharedMemory"

#: Constructors of process-pool executors (the pickling boundary).
EXECUTOR_CONSTRUCTORS = frozenset({"concurrent.futures.ProcessPoolExecutor"})

#: Provenance tags (the lattice the taint rules reason over).
TAG_LOCK = "lock"
TAG_FILE = "file"
TAG_SHM = "shm"
TAG_EXECUTOR = "executor"
TAG_SS_RAW = "ss_raw"            # SeedSequence(...) built by hand
TAG_SPAWNED = "spawned"          # .spawn() child / blessed seed factory
TAG_GEN_SPAWNED = "gen_spawned"  # default_rng(<spawned>)
TAG_GEN_GUARDED = "gen_guarded"  # the `if rng is None:` seeded fallback
TAG_GEN_UNSPAWNED = "gen_unspawned"
PARAM_PREFIX = "param:"          # injected rng/seed parameter


def is_rng_param(name: str) -> bool:
    return (
        name == "rng" or name.endswith("_rng")
        or name == "seed" or name.endswith("_seed")
        or name == "seed_seq" or name.endswith("seed_sequence")
    )


def _attr_root(node: ast.AST) -> ast.AST:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _is_self_attribute(node: ast.AST) -> bool:
    root = _attr_root(node)
    return isinstance(root, ast.Name) and root.id == "self"


def _self_attr_name(node: ast.AST) -> Optional[str]:
    """The first attribute off ``self`` (``self._buf[i]`` -> ``_buf``)."""
    seen: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            seen.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and seen:
        return seen[-1]
    return None


@dataclass
class _Scope:
    """Mutable walk state for one function body."""

    qual: str
    cls: Optional[str]
    is_async: bool
    params: list[str]
    rng_params: list[str]
    env: dict[str, str] = field(default_factory=dict)
    guarded_calls: set[int] = field(default_factory=set)
    record: dict[str, Any] = field(default_factory=dict)


class SummaryExtractor:
    """One walk of a module tree, producing the JSON-shaped summary."""

    def __init__(
        self,
        tree: ast.Module,
        resolver: ImportResolver,
        config: LintConfig,
        path: str,
        modname: str,
    ):
        self.tree = tree
        self.resolver = resolver
        self.config = config
        self.path = path
        self.modname = modname
        self.module_locks: set[str] = set()
        self.summary: dict[str, Any] = {
            "path": path,
            "module": modname,
            "aliases": dict(resolver.aliases),
            "stars": list(resolver.star_imports),
            "constants": {},
            "classes": {},
            "functions": {},
        }

    # ------------------------------------------------------------------
    def extract(self) -> dict[str, Any]:
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                self._module_assign(node)
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(node, cls=None, prefix="")
            elif isinstance(node, ast.ClassDef):
                self._class(node)
        return self.summary

    def _module_assign(self, node: ast.Assign) -> None:
        value = node.value
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, int):
                self.summary["constants"][target.id] = {"line": node.lineno}
            if (
                isinstance(value, ast.Call)
                and self.resolver.resolve_call(value) in LOCK_CONSTRUCTORS
            ):
                self.module_locks.add(target.id)

    # ------------------------------------------------------------------
    def _class(self, cls: ast.ClassDef) -> None:
        lock_attrs = self._lock_attributes(cls)
        info: dict[str, Any] = {
            "line": cls.lineno,
            "lock_attrs": sorted(lock_attrs),
            "methods": [
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ],
        }
        self.summary["classes"][cls.name] = info
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, cls=cls.name, prefix=f"{cls.name}.")

    def _lock_attributes(self, cls: ast.ClassDef) -> set[str]:
        owned: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.ListComp):
                value = value.elt  # `[Lock() for _ in ...]` shard lists
            if not isinstance(value, ast.Call):
                continue
            if self.resolver.resolve_call(value) not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and _is_self_attribute(target):
                    owned.add(target.attr)
        return owned

    # ------------------------------------------------------------------
    def _function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        cls: Optional[str],
        prefix: str,
    ) -> None:
        qual = f"{prefix}{func.name}"
        args = func.args
        params = [
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        scope = _Scope(
            qual=qual,
            cls=cls,
            is_async=isinstance(func, ast.AsyncFunctionDef),
            params=params,
            rng_params=[p for p in params if is_rng_param(p)],
        )
        scope.record = {
            "name": func.name,
            "cls": cls,
            "line": func.lineno,
            "col": func.col_offset,
            "is_async": scope.is_async,
            "params": params,
            "calls": [],
            "attrs": [],
            "awaits": [],
            "blocking": [],
            "submits": [],
        }
        self.summary["functions"][qual] = scope.record
        self._collect_guards(func, scope)
        self._bind_assignments(func, scope)
        for stmt in func.body:
            self._visit(stmt, scope, locks=(), awaited=False)
        # Nested defs get their own summaries (their bodies run in their
        # own frames — often on an executor, never under our locks).
        for node in self._own_nodes(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(node, cls=cls, prefix=f"{qual}.<locals>.")

    @staticmethod
    def _own_nodes(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _collect_guards(self, func: ast.AST, scope: _Scope) -> None:
        """Calls under ``if <rng-param> is None:`` — the blessed fallback."""
        params = set(scope.rng_params)
        for node in ast.walk(func):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id in params
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        scope.guarded_calls.add(id(sub))

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def _bind_assignments(self, func: ast.AST, scope: _Scope) -> None:
        """Straight-line ``name = <expr>`` tag propagation, source order."""
        for node in self._own_nodes(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                tag = self._value_tag(node.value, scope)
                if tag is not None:
                    scope.env[node.targets[0].id] = tag
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and isinstance(node.target, ast.Name):
                tag = self._value_tag(node.value, scope)
                if tag is not None:
                    scope.env[node.target.id] = tag
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.optional_vars is None or not isinstance(
                        item.optional_vars, ast.Name
                    ):
                        continue
                    tag = self._value_tag(item.context_expr, scope)
                    if tag is not None:
                        scope.env[item.optional_vars.id] = tag

    def _value_tag(self, node: ast.AST, scope: _Scope) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in scope.env:
                return scope.env[node.id]
            if node.id in scope.rng_params:
                return PARAM_PREFIX + node.id
            if node.id in self.module_locks:
                return TAG_LOCK
            return None
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self._value_tag(node.value, scope)
        if isinstance(node, ast.Attribute):
            if _is_self_attribute(node):
                cls_info = self.summary["classes"].get(scope.cls or "", {})
                if node.attr in cls_info.get("lock_attrs", ()):
                    return TAG_LOCK
            return None
        if isinstance(node, ast.Await):
            return self._value_tag(node.value, scope)
        if not isinstance(node, ast.Call):
            return None
        dotted = self.resolver.resolve_call(node)
        if dotted in LOCK_CONSTRUCTORS:
            return TAG_LOCK
        if dotted == SHARED_MEMORY_CONSTRUCTOR:
            return TAG_SHM
        if dotted in EXECUTOR_CONSTRUCTORS or (
            dotted is not None and dotted in self.config.executor_factories
        ):
            return TAG_EXECUTOR
        if dotted is not None and dotted in self.config.seed_factories:
            return TAG_SPAWNED
        if dotted == "numpy.random.SeedSequence":
            return TAG_SS_RAW
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            return TAG_FILE
        if isinstance(node.func, ast.Attribute) and node.func.attr == "open":
            return TAG_FILE
        if isinstance(node.func, ast.Attribute) and node.func.attr == "spawn":
            return TAG_SPAWNED
        if dotted == "numpy.random.default_rng":
            if id(node) in scope.guarded_calls:
                return TAG_GEN_GUARDED
            if not node.args:
                return TAG_GEN_UNSPAWNED
            seed_tag = self._value_tag(node.args[0], scope)
            if seed_tag == TAG_SPAWNED:
                return TAG_GEN_SPAWNED
            if seed_tag is not None and seed_tag.startswith(PARAM_PREFIX):
                return "gen_from_" + seed_tag
            return TAG_GEN_UNSPAWNED
        return None

    # ------------------------------------------------------------------
    # Walk
    # ------------------------------------------------------------------
    def _lock_name(self, expr: ast.AST, scope: _Scope) -> Optional[str]:
        """The held-lock identity of a sync ``with`` context, if lock-ish."""
        if isinstance(expr, ast.Call):  # `self._lock.acquire()` style
            expr = expr.func
            if isinstance(expr, ast.Attribute) and expr.attr == "acquire":
                expr = expr.value
        if isinstance(expr, ast.Attribute) and _is_self_attribute(expr):
            cls_info = self.summary["classes"].get(scope.cls or "", {})
            if expr.attr in cls_info.get("lock_attrs", ()):
                return f"self.{expr.attr}"
            hints = self.config.lock_attribute_hints
            if any(hint in expr.attr.lower() for hint in hints):
                return f"self.{expr.attr}"
        if isinstance(expr, ast.Name):
            if expr.id in self.module_locks or scope.env.get(expr.id) == TAG_LOCK:
                return expr.id
            hints = self.config.lock_attribute_hints
            if any(hint in expr.id.lower() for hint in hints):
                return expr.id
        return None

    def _visit(
        self,
        node: ast.AST,
        scope: _Scope,
        *,
        locks: tuple[str, ...],
        awaited: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # separate frame; summarised on its own
        if isinstance(node, ast.With):
            held = list(locks)
            for item in node.items:
                name = self._lock_name(item.context_expr, scope)
                if name is not None and name not in held:
                    held.append(name)
                self._visit(item.context_expr, scope, locks=locks, awaited=False)
            for child in node.body:
                self._visit(child, scope, locks=tuple(held), awaited=False)
            return
        if isinstance(node, ast.Await):
            scope.record["awaits"].append(
                {"line": node.lineno, "col": node.col_offset, "locks": list(locks)}
            )
            self._visit(node.value, scope, locks=locks, awaited=True)
            return
        if isinstance(node, ast.Call):
            self._call(node, scope, locks=locks, awaited=awaited)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            self._attr_write(node, scope, locks=locks)
        elif isinstance(node, ast.Attribute):
            self._attr_read(node, scope, locks=locks)
        for child in ast.iter_child_nodes(node):
            self._visit(child, scope, locks=locks, awaited=False)

    def _attr_write(
        self, node: ast.Assign | ast.AugAssign, scope: _Scope, *,
        locks: tuple[str, ...],
    ) -> None:
        if scope.cls is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        kind = "augwrite" if isinstance(node, ast.AugAssign) else "write"
        for target in targets:
            attr = _self_attr_name(target)
            if attr is None:
                continue
            scope.record["attrs"].append(
                {
                    "attr": attr,
                    "kind": kind,
                    "locks": list(locks),
                    "line": node.lineno,
                    "col": node.col_offset,
                }
            )

    def _attr_read(
        self, node: ast.Attribute, scope: _Scope, *, locks: tuple[str, ...]
    ) -> None:
        if scope.cls is None or not isinstance(node.ctx, ast.Load):
            return
        # Record at the innermost `self.<attr>` node only — the chain
        # `self._buf.get(k)` visits both the outer and inner Attribute
        # and would otherwise double-report.
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        cls_info = self.summary["classes"].get(scope.cls, {})
        if not cls_info.get("lock_attrs"):
            return  # reads only matter where a locking contract exists
        attr = node.attr
        if attr in cls_info.get("lock_attrs", ()):
            return
        scope.record["attrs"].append(
            {
                "attr": attr,
                "kind": "read",
                "locks": list(locks),
                "line": node.lineno,
                "col": node.col_offset,
            }
        )

    def _call(
        self, node: ast.Call, scope: _Scope, *,
        locks: tuple[str, ...], awaited: bool,
    ) -> None:
        dotted = self.resolver.resolve_call(node)
        record: dict[str, Any] = {
            "target": dotted,
            "line": node.lineno,
            "col": node.col_offset,
            "locks": list(locks),
            "awaited": awaited,
        }
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            record["self_method"] = func.attr
        elif isinstance(func, ast.Name):
            record["local_name"] = func.id
        rng_args = self._rng_args(node, scope)
        if rng_args:
            record["rng_args"] = rng_args
        scope.record["calls"].append(record)

        blocking = self._blocking_shape(node, dotted)
        if blocking is not None and not awaited:
            scope.record["blocking"].append(
                {
                    "what": blocking,
                    "line": node.lineno,
                    "col": node.col_offset,
                    "locks": list(locks),
                }
            )
        self._maybe_submit(node, scope, dotted)

    def _rng_args(self, node: ast.Call, scope: _Scope) -> dict[str, str]:
        """Provenance of randomness-carrying arguments, by position/kw."""
        tracked = (
            TAG_SS_RAW, TAG_SPAWNED, TAG_GEN_SPAWNED, TAG_GEN_GUARDED,
            TAG_GEN_UNSPAWNED,
        )
        out: dict[str, str] = {}
        for i, arg in enumerate(node.args):
            tag = self._value_tag(arg, scope)
            if tag is not None and (
                tag in tracked
                or tag.startswith(PARAM_PREFIX)
                or tag.startswith("gen_from_" + PARAM_PREFIX)
            ):
                out[str(i)] = tag
        for kw in node.keywords:
            if kw.arg is None:
                continue
            tag = self._value_tag(kw.value, scope)
            if tag is not None and (
                tag in tracked
                or tag.startswith(PARAM_PREFIX)
                or tag.startswith("gen_from_" + PARAM_PREFIX)
            ):
                out[kw.arg] = tag
        return out

    def _blocking_shape(
        self, call: ast.Call, dotted: Optional[str]
    ) -> Optional[str]:
        if dotted in BLOCKING_CALLS:
            return f"{dotted}()"
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return "open()"
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in BLOCKING_PATH_METHODS:
                return f".{attr}()"
            if attr in ("get", "put"):
                receiver = ast.unparse(call.func.value).lower()
                if "queue" in receiver:
                    return f"blocking queue .{attr}()"
        return None

    def _maybe_submit(
        self, node: ast.Call, scope: _Scope, dotted: Optional[str]
    ) -> None:
        """Record process-executor dispatches with argument provenance."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("submit", "map")):
            return
        receiver_tag = self._value_tag(func.value, scope)
        if receiver_tag != TAG_EXECUTOR:
            return
        flagged = (TAG_LOCK, TAG_FILE, TAG_SHM)
        args: list[dict[str, Any]] = []
        # For `submit(fn, *args)` the callable itself is args[0]; for
        # `map(fn, iterable)` likewise — every operand crosses the
        # pickling boundary, so all are audited.
        for i, arg in enumerate(node.args):
            tag = self._value_tag(arg, scope)
            if tag is None:
                continue
            if tag in flagged or tag.startswith("gen_"):
                args.append(
                    {
                        "pos": i,
                        "tag": tag if tag in flagged else "rng",
                        "expr": ast.unparse(arg),
                        "line": arg.lineno,
                        "col": arg.col_offset,
                    }
                )
        for kw in node.keywords:
            if kw.arg is None:
                continue
            tag = self._value_tag(kw.value, scope)
            if tag is None:
                continue
            if tag in flagged or tag.startswith("gen_"):
                args.append(
                    {
                        "pos": kw.arg,
                        "tag": tag if tag in flagged else "rng",
                        "expr": ast.unparse(kw.value),
                        "line": kw.value.lineno,
                        "col": kw.value.col_offset,
                    }
                )
        scope.record["submits"].append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "kind": func.attr,
                "args": args,
            }
        )


def extract_summary(
    tree: ast.Module,
    resolver: ImportResolver,
    config: LintConfig,
    path: str,
    modname: str,
) -> dict[str, Any]:
    """The module's whole-program summary (JSON-shaped, cacheable)."""
    return SummaryExtractor(tree, resolver, config, path, modname).extract()


__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_PATH_METHODS",
    "EXECUTOR_CONSTRUCTORS",
    "LOCK_CONSTRUCTORS",
    "PARAM_PREFIX",
    "SETUP_METHODS",
    "SHARED_MEMORY_CONSTRUCTOR",
    "SummaryExtractor",
    "extract_summary",
    "is_rng_param",
]
