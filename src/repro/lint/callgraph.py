"""Project-wide symbol table and call graph, built from module summaries.

Nodes are fully-qualified function names (``repro.stream.workers.
ShardedWorkerPool._classify_batch``); edges are best-effort resolved
call sites.  Resolution handles the shapes this repository actually
uses:

* absolute imports canonicalised by the per-module
  :class:`~repro.lint.resolver.ImportResolver` (including relative
  imports — the project tells each resolver its module name);
* package re-exports: ``repro.lint.lint_paths`` follows the
  ``repro.lint/__init__`` alias chain to ``repro.lint.runner.lint_paths``;
* ``self.method()`` calls inside a class;
* bare local names, with a star-import fallback when the name is not
  defined in the calling module but is defined in exactly the starred
  modules.

The graph is *under-approximate* by design — dynamic dispatch,
higher-order callbacks and getattr tricks produce no edges — so rules
built on it treat a missing edge as "unknown", never as "safe to flag".
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

#: Follow at most this many re-export hops (cycles in __init__ chains).
_MAX_ALIAS_HOPS = 8


class FunctionNode:
    """One summarised function, addressable by its global qualname."""

    __slots__ = ("qualname", "module", "path", "record")

    def __init__(self, qualname: str, module: str, path: str, record: dict[str, Any]):
        self.qualname = qualname
        self.module = module
        self.path = path
        self.record = record

    @property
    def cls(self) -> Optional[str]:
        return self.record.get("cls")

    @property
    def is_async(self) -> bool:
        return bool(self.record.get("is_async"))


class CallGraph:
    """Symbol table + call edges over every module summary."""

    def __init__(self, summaries: dict[str, dict[str, Any]]):
        #: path -> summary (as produced by :func:`extract_summary`).
        self.summaries = summaries
        self.by_module: dict[str, dict[str, Any]] = {
            s["module"]: s for s in summaries.values()
        }
        self.functions: dict[str, FunctionNode] = {}
        for summary in summaries.values():
            for qual, record in summary["functions"].items():
                qualname = f"{summary['module']}.{qual}"
                self.functions[qualname] = FunctionNode(
                    qualname, summary["module"], summary["path"], record
                )
        # callee qualname -> [(caller FunctionNode, call record)]
        self._callers: dict[str, list[tuple[FunctionNode, dict[str, Any]]]] = {}
        # caller qualname -> [(callee qualname, call record)]
        self._callees: dict[str, list[tuple[str, dict[str, Any]]]] = {}
        self._build_edges()

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def _module_symbol(self, module: str, symbol: str) -> Optional[str]:
        """Resolve ``symbol`` (``name`` or ``Class.method``) in ``module``."""
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if symbol in summary["functions"]:
            return f"{module}.{symbol}"
        head = symbol.split(".", 1)[0]
        if head in summary["classes"]:
            # A bare class resolves to its constructor when present.
            if "." not in symbol:
                init = f"{symbol}.__init__"
                if init in summary["functions"]:
                    return f"{module}.{init}"
                return f"{module}.{symbol}"  # class node (no ctor summarised)
            if symbol in summary["functions"]:  # pragma: no cover - head match
                return f"{module}.{symbol}"
        return None

    def resolve_dotted(self, dotted: str, hops: int = 0) -> Optional[str]:
        """Global qualname for a canonical dotted path, if project-local."""
        if hops > _MAX_ALIAS_HOPS:
            return None
        # Longest module prefix wins: repro.stream.workers.Pool.submit
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.by_module:
                continue
            symbol = ".".join(parts[cut:])
            direct = self._module_symbol(module, symbol)
            if direct is not None:
                return direct
            # Re-export: the module's own alias table may forward the
            # first symbol component (package __init__ chains).
            summary = self.by_module[module]
            head, _, rest = symbol.partition(".")
            alias = summary.get("aliases", {}).get(head)
            if alias is not None:
                forwarded = alias + (("." + rest) if rest else "")
                return self.resolve_dotted(forwarded, hops + 1)
            for star in summary.get("stars", ()):
                candidate = self.resolve_dotted(
                    f"{star}.{symbol}", hops + 1
                )
                if candidate is not None:
                    return candidate
            return None
        return None

    def resolve_call(
        self, caller: FunctionNode, call: dict[str, Any]
    ) -> Optional[str]:
        """Global qualname of a call record's target, if project-local."""
        target = call.get("target")
        if target is not None:
            return self.resolve_dotted(target)
        summary = self.by_module.get(caller.module)
        method = call.get("self_method")
        if method is not None and caller.cls is not None and summary is not None:
            qual = f"{caller.cls}.{method}"
            if qual in summary["functions"]:
                return f"{caller.module}.{qual}"
            return None
        local = call.get("local_name")
        if local is not None and summary is not None:
            resolved = self._module_symbol(caller.module, local)
            if resolved is not None:
                return resolved
            alias = summary.get("aliases", {}).get(local)
            if alias is not None:
                return self.resolve_dotted(alias)
            for star in summary.get("stars", ()):
                candidate = self.resolve_dotted(f"{star}.{local}")
                if candidate is not None:
                    return candidate
        return None

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        for node in self.functions.values():
            for call in node.record.get("calls", ()):
                callee = self.resolve_call(node, call)
                if callee is None:
                    continue
                self._callees.setdefault(node.qualname, []).append((callee, call))
                self._callers.setdefault(callee, []).append((node, call))

    def callers_of(
        self, qualname: str
    ) -> list[tuple[FunctionNode, dict[str, Any]]]:
        return self._callers.get(qualname, [])

    def callees_of(self, qualname: str) -> list[tuple[str, dict[str, Any]]]:
        return self._callees.get(qualname, [])

    def iter_functions(self) -> Iterator[FunctionNode]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    def may_block(self) -> frozenset[str]:
        """Functions that (transitively) make a blocking sync call.

        Seeded by direct blocking records, propagated backwards over the
        call edges to a fixpoint.  An ``await`` of an async callee does
        not launder the block away — the blocking section is still
        synchronous inside whoever runs it.
        """
        blocked: set[str] = {
            node.qualname
            for node in self.functions.values()
            if node.record.get("blocking")
        }
        changed = True
        while changed:
            changed = False
            for caller, edges in self._callees.items():
                if caller in blocked:
                    continue
                if any(callee in blocked for callee, _ in edges):
                    blocked.add(caller)
                    changed = True
        return frozenset(blocked)

    def methods_called_only_under(
        self, module: str, cls: str, locks: frozenset[str]
    ) -> frozenset[str]:
        """Methods of ``cls`` reached exclusively with one of ``locks`` held.

        The lockset generalisation: a private helper whose every project
        call site already holds the guarding lock inherits the lock —
        its unlocked-looking accesses are safe.  Computed to a fixpoint
        so helper-of-helper chains resolve; a method with *no* known
        call sites is never considered locked.
        """
        prefix = f"{module}.{cls}."
        methods = [q for q in self.functions if q.startswith(prefix)
                   and "<locals>" not in q]
        locked: set[str] = set()
        changed = True
        while changed:
            changed = False
            for qualname in methods:
                if qualname in locked:
                    continue
                callers = self._callers.get(qualname, [])
                if not callers:
                    continue
                def covered(caller: FunctionNode, call: dict[str, Any]) -> bool:
                    if any(lock in locks for lock in call.get("locks", ())):
                        return True
                    return caller.qualname in locked
                if all(covered(caller, call) for caller, call in callers):
                    locked.add(qualname)
                    changed = True
        return frozenset(locked)


__all__ = ["CallGraph", "FunctionNode"]
