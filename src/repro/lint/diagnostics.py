"""Diagnostic records emitted by the invariant checker.

A :class:`Diagnostic` is one rule violation pinned to a file and line.
The formatting contract is the classic compiler shape —
``path:line:col: CODE message`` — so editors, CI annotations and humans
can all parse the output the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at a source location.

    Attributes
    ----------
    path:
        Repo-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column (``ast`` conventions).
    code:
        The ``VPLxxx`` rule code.
    message:
        Human-readable explanation including the suggested fix.
    """

    path: str
    line: int
    col: int
    code: str = field(compare=False)
    message: str = field(compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def format_report(diagnostics: list[Diagnostic]) -> str:
    """Sorted, newline-joined report plus a one-line tally."""
    lines = [d.format() for d in sorted(diagnostics)]
    noun = "violation" if len(diagnostics) == 1 else "violations"
    lines.append(f"found {len(diagnostics)} {noun}")
    return "\n".join(lines)


__all__ = ["Diagnostic", "format_report"]
