"""Synthetic vehicles standing in for the paper's test trucks."""

from repro.vehicles.dataset import CaptureSession, capture_balanced, capture_session
from repro.vehicles.profiles import (
    DEFAULT_TRUNCATE_BITS,
    EcuDefinition,
    VehicleConfig,
    sterling_acterra,
    vehicle_a,
    vehicle_b,
)

__all__ = [
    "CaptureSession",
    "capture_balanced",
    "capture_session",
    "DEFAULT_TRUNCATE_BITS",
    "EcuDefinition",
    "VehicleConfig",
    "sterling_acterra",
    "vehicle_a",
    "vehicle_b",
]
