"""Vehicle inference: build a :class:`VehicleConfig` from captures.

Combines the inverse tools of the library into one workflow — given a
capture from an unknown bus (real or simulated), reconstruct a synthetic
vehicle that statistically reproduces it:

1. extract edge sets and group source addresses into ECUs
   (``ClusterByDist``, the paper's "unfortunate" training branch);
2. fit each ECU's transceiver fingerprint
   (:mod:`repro.analog.calibration`);
3. infer each identifier's transmission schedule from arrival times;
4. estimate the channel noise from plateau statistics.

The result can be captured from again, enabling
``real capture -> synthetic twin -> unlimited experiment data``.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.analog.calibration import estimate_fingerprint
from repro.analog.channel import ChannelNoise
from repro.can.j1939 import J1939Id
from repro.can.traffic import MessageSchedule
from repro.core.edge_extraction import ExtractionConfig, extract_many
from repro.core.training import cluster_sas_by_distance
from repro.errors import DatasetError
from repro.vehicles.profiles import EcuDefinition, VehicleConfig


def infer_schedules(
    traces: list[VoltageTrace],
) -> dict[int, MessageSchedule]:
    """Infer per-identifier periodic schedules from arrival times.

    Uses the median inter-arrival time as the period and the first
    arrival modulo the period as the phase.  Identifiers seen fewer than
    four times are skipped (no reliable period).
    """
    arrivals: dict[int, list[float]] = defaultdict(list)
    ids: dict[int, int] = {}
    for trace in traces:
        frame = trace.metadata.get("frame")
        if frame is None or not frame.extended:
            continue
        arrivals[frame.can_id].append(trace.start_s)
        ids[frame.can_id] = frame.can_id
    schedules: dict[int, MessageSchedule] = {}
    for can_id, times in arrivals.items():
        if len(times) < 4:
            continue
        times = sorted(times)
        gaps = np.diff(times)
        period = float(np.median(gaps))
        if period <= 0:
            continue
        jitter = float(np.percentile(gaps, 90) - period)
        schedules[can_id] = MessageSchedule(
            j1939_id=J1939Id.from_can_id(can_id),
            period_s=period,
            phase_s=float(times[0] % period),
            jitter_s=max(jitter, 0.0),
        )
    if not schedules:
        raise DatasetError("no periodic identifiers found in the capture")
    return schedules


def estimate_channel_noise(
    traces: list[VoltageTrace], *, threshold_v: float = 1.0
) -> ChannelNoise:
    """Estimate the channel noise model from plateau statistics.

    * white noise — median within-plateau sample standard deviation;
    * baseline wander — standard deviation of per-message plateau means
      (in excess of the white-noise contribution);
    * the AR component cannot be separated from white noise without
      spectra, so it is folded into the white estimate (conservative).
    """
    within: list[float] = []
    means: list[float] = []
    for trace in traces:
        volts = trace.to_volts()
        above = volts >= threshold_v
        crossings = np.nonzero(np.diff(above.astype(np.int8)) != 0)[0]
        mask = np.ones(volts.size, dtype=bool)
        guard = max(4, round(0.6e-6 * trace.sample_rate))
        for crossing in crossings:
            mask[max(0, crossing - guard) : crossing + guard + 2] = False
        plateau = volts[above & mask]
        if plateau.size < 8:
            continue
        within.append(float(plateau.std()))
        means.append(float(plateau.mean()))
    if len(means) < 4:
        raise DatasetError("too few usable plateaus to estimate noise")
    white = float(np.median(within))
    between = float(np.std(means))
    baseline = float(np.sqrt(max(between**2 - white**2 / 8.0, 0.0)))
    return ChannelNoise(
        white_sigma_v=white,
        ar_sigma_v=0.0,
        ar_coeff=0.0,
        baseline_sigma_v=baseline,
        amplitude_jitter=0.0,
    )


def infer_vehicle(
    traces: list[VoltageTrace],
    name: str = "InferredVehicle",
    *,
    cluster_distance_threshold: float | None = None,
    jobs: int | None = None,
) -> VehicleConfig:
    """Reconstruct a synthetic vehicle from a capture.

    The traces need frame metadata (id + payload), which any CAN
    controller provides alongside the analog tap.  Ground-truth sender
    labels are *not* used — ECU grouping comes from voltage clustering.
    ``jobs`` parallelises the edge-set extraction step (deterministic,
    identical output).
    """
    if not traces:
        raise DatasetError("cannot infer a vehicle from an empty capture")
    reference = traces[0]
    extraction = ExtractionConfig.for_trace(reference)
    if jobs is not None:
        from repro.perf.engine import extract_many_parallel

        edge_sets = extract_many_parallel(
            traces, extraction, jobs=jobs, skip_failures=True
        )
    else:
        edge_sets = extract_many(traces, extraction, skip_failures=True)
    if not edge_sets:
        raise DatasetError("no edge sets could be extracted from the capture")

    by_sa: dict[int, list[int]] = defaultdict(list)
    for index, edge_set in enumerate(edge_sets):
        by_sa[edge_set.source_address].append(index)
    sa_means = {
        sa: np.stack([edge_sets[i].vector for i in rows]).mean(axis=0)
        for sa, rows in by_sa.items()
    }
    clusters = cluster_sas_by_distance(sa_means, cluster_distance_threshold)

    schedules = infer_schedules(traces)
    noise = estimate_channel_noise(traces)

    ecus = []
    for cluster_index, (cluster_name, sas) in enumerate(sorted(clusters.items())):
        ecu_name = f"ECU{cluster_index}"
        ecu_traces = [
            trace
            for trace in traces
            if (frame := trace.metadata.get("frame")) is not None
            and frame.can_id & 0xFF in sas
        ]
        if len(ecu_traces) < 5:
            raise DatasetError(
                f"cluster {cluster_name} has too few messages to fingerprint"
            )
        transceiver = estimate_fingerprint(ecu_traces[:120], ecu_name)
        ecu_schedules = tuple(
            schedule
            for can_id, schedule in sorted(schedules.items())
            if can_id & 0xFF in sas
        )
        if not ecu_schedules:
            raise DatasetError(f"no schedules inferred for {ecu_name}")
        ecus.append(
            EcuDefinition(
                name=ecu_name, transceiver=transceiver, schedules=ecu_schedules
            )
        )

    return VehicleConfig(
        name=name,
        bitrate=reference.bitrate,
        sample_rate=reference.sample_rate,
        resolution_bits=reference.resolution_bits,
        ecus=tuple(ecus),
        noise=noise,
    )
