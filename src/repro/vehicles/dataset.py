"""Labelled capture sessions from synthetic vehicles.

Drives the whole substrate stack — traffic generation, bus arbitration,
waveform synthesis, digitisation — to produce the voltage traces the
paper records from its trucks' OBD-II ports.  Ground-truth sender labels
ride along in trace metadata for the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.can.bus import CanBus
from repro.can.traffic import TrafficGenerator
from repro.errors import DatasetError
from repro.vehicles.profiles import DEFAULT_TRUNCATE_BITS, VehicleConfig


@dataclass(frozen=True)
class CaptureSession:
    """One recorded drive/idle session.

    Attributes
    ----------
    vehicle:
        The vehicle the session came from.
    traces:
        Digitized messages in bus order; each trace's metadata carries
        ``sender`` (ground truth) and ``frame``.
    environment:
        Conditions during the capture.
    """

    vehicle: VehicleConfig
    traces: list[VoltageTrace]
    environment: Environment

    def __len__(self) -> int:
        return len(self.traces)

    def senders(self) -> list[str]:
        """Ground-truth sender of every trace."""
        return [t.metadata["sender"] for t in self.traces]

    def split(self, train_fraction: float, seed: int = 0) -> tuple[list[VoltageTrace], list[VoltageTrace]]:
        """Random train/test split of the session's traces."""
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError(f"train fraction must be in (0, 1), got {train_fraction}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.traces))
        cut = int(round(train_fraction * len(self.traces)))
        train = [self.traces[i] for i in order[:cut]]
        test = [self.traces[i] for i in order[cut:]]
        return train, test

    def split_time(self, train_fraction: float) -> tuple[list[VoltageTrace], list[VoltageTrace]]:
        """Chronological train/test split.

        Use this instead of :meth:`split` when the consumer cares about
        message timing (period monitors, clock-skew fingerprinting):
        a random split would punch holes into every periodic stream.
        """
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError(f"train fraction must be in (0, 1), got {train_fraction}")
        cut = int(round(train_fraction * len(self.traces)))
        return list(self.traces[:cut]), list(self.traces[cut:])


def capture_session(
    vehicle: VehicleConfig,
    duration_s: float,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    jobs: int | None = None,
    cache=None,
    shm: bool | None = None,
) -> CaptureSession:
    """Record ``duration_s`` of bus traffic under ``env``.

    Messages are released by each ECU's periodic schedule, serialised
    through bitwise arbitration, rendered through the sending ECU's
    transceiver and digitized by the vehicle's capture chain.

    ``jobs``/``cache`` opt into the :mod:`repro.perf` engine (batched
    rendering, worker fan-out, content-addressed caching).  The engine
    seeds each message from its own ``SeedSequence`` child, so its
    traces are reproducible across job counts and cache state but
    differ from this function's default sequential-RNG stream; leave
    both unset to keep legacy seed-pinned captures byte-stable.
    ``shm`` picks how multi-worker chunks travel back to the parent
    (``None`` defers to ``REPRO_SHM``, default shared memory); it never
    changes the bytes.
    """
    if duration_s <= 0:
        raise DatasetError(f"duration must be positive, got {duration_s}")
    if jobs is not None or cache is not None:
        from repro.perf.engine import capture_session_engine

        return capture_session_engine(
            vehicle,
            duration_s,
            env=env,
            seed=seed,
            truncate_bits=truncate_bits,
            jobs=jobs,
            cache=cache,
            shm=shm,
        )
    rng = np.random.default_rng(seed)
    generator = TrafficGenerator(
        schedules=[
            (ecu.name, schedule)
            for ecu in vehicle.ecus
            for schedule in ecu.schedules
        ],
        seed=seed,
    )
    bus = CanBus(bitrate=vehicle.bitrate)
    transmissions = bus.schedule(generator.frames_until(duration_s))
    chain = vehicle.capture_chain(truncate_bits)
    transceivers = {ecu.name: ecu.transceiver for ecu in vehicle.ecus}
    traces = [
        chain.capture_frame(
            tx.frame,
            transceivers[tx.sender],
            env=env,
            rng=rng,
            start_s=tx.start_s,
        )
        for tx in transmissions
    ]
    return CaptureSession(vehicle=vehicle, traces=traces, environment=env)


def capture_balanced(
    vehicle: VehicleConfig,
    messages_per_schedule: int,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
) -> CaptureSession:
    """Capture a fixed number of messages per schedule, skipping bus timing.

    Controlled experiments (distance tables, enhancement studies) need
    balanced per-ECU counts more than realistic interleaving; this
    bypasses the bus scheduler and synthesises each schedule's frames
    directly, which is also considerably faster.
    """
    if messages_per_schedule < 1:
        raise DatasetError("messages_per_schedule must be at least 1")
    rng = np.random.default_rng(seed)
    chain = vehicle.capture_chain(truncate_bits)
    traces: list[VoltageTrace] = []
    for ecu in vehicle.ecus:
        generator = TrafficGenerator(
            schedules=[(ecu.name, s) for s in ecu.schedules],
            seed=seed + hash(ecu.name) % 10_000,
        )
        horizon = max(s.period_s for s in ecu.schedules) * (messages_per_schedule + 1)
        released = generator.frames_until(horizon)
        per_schedule: dict[int, int] = {}
        for scheduled in released:
            key = scheduled.frame.can_id
            if per_schedule.get(key, 0) >= messages_per_schedule:
                continue
            per_schedule[key] = per_schedule.get(key, 0) + 1
            traces.append(
                chain.capture_frame(
                    scheduled.frame,
                    ecu.transceiver,
                    env=env,
                    rng=rng,
                    start_s=scheduled.release_s,
                )
            )
    return CaptureSession(vehicle=vehicle, traces=traces, environment=env)
