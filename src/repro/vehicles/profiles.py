"""Synthetic vehicle definitions standing in for the paper's test trucks.

The paper evaluates on a 2016 Peterbilt 579 ("Vehicle A", captured at
20 MS/s / 16 bit with an AlazarTech digitizer) and a confidential
industry-partner vehicle ("Vehicle B", captured at 10 MS/s / 12 bit with
custom hardware), both with 250 kb/s J1939 buses.  We cannot use those
trucks, so each is replaced by a parameterised bus whose ECU fingerprints
reproduce the *statistical relationships* the paper reports:

* Vehicle A: five ECUs with visually distinct voltage profiles (paper
  Figure 4.2).  ECUs 1 and 4 are the most similar pair, ECUs 0 and 1 the
  next (Section 4.2.1/4.2.2), and ECUs 0 and 2 carry the largest
  temperature coefficients (Figure 4.6).
* Vehicle B: eight ECUs with much less distinct profiles and a noisier
  (driving) capture, which is what degrades the Euclidean metric in
  Table 4.2.
* A two-ECU "2006 Sterling Acterra" used for Figures 2.5/3.1.

All parameters are ordinary engineering numbers (volts, MHz, V/degC); see
DESIGN.md for the calibration targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acquisition.adc import AdcConfig
from repro.acquisition.sampler import CaptureChain
from repro.analog.channel import NOISY_CHANNEL, QUIET_CHANNEL, ChannelNoise
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import SynthesisConfig
from repro.can.j1939 import (
    PGN_CCVS,
    PGN_DM1,
    PGN_EBC1,
    PGN_EEC1,
    PGN_EEC2,
    PGN_ET1,
    PGN_ETC1,
    PGN_VEP1,
    J1939Id,
)
from repro.can.traffic import MessageSchedule
from repro.errors import DatasetError

#: Rendering enough wire bits for Algorithm 1 (bit 33 plus the following
#: edge pair, stuffing included) without paying for full frames.
DEFAULT_TRUNCATE_BITS = 60


@dataclass(frozen=True)
class EcuDefinition:
    """One ECU: an electrical fingerprint plus its message schedule."""

    name: str
    transceiver: TransceiverParams
    schedules: tuple[MessageSchedule, ...]

    @property
    def source_addresses(self) -> tuple[int, ...]:
        """All SAs this ECU transmits under."""
        return tuple(
            sorted({s.j1939_id.source_address for s in self.schedules})
        )


@dataclass(frozen=True)
class VehicleConfig:
    """A complete synthetic vehicle: bus, ECUs, and capture hardware."""

    name: str
    bitrate: float
    sample_rate: float
    resolution_bits: int
    ecus: tuple[EcuDefinition, ...]
    noise: ChannelNoise

    def __post_init__(self) -> None:
        seen: dict[int, str] = {}
        for ecu in self.ecus:
            for sa in ecu.source_addresses:
                if sa in seen and seen[sa] != ecu.name:
                    raise DatasetError(
                        f"SA 0x{sa:02X} claimed by both {seen[sa]} and {ecu.name}"
                    )
                seen[sa] = ecu.name

    @property
    def sa_clusters(self) -> dict[int, str]:
        """The "fortunate" SA -> ECU lookup table for this vehicle."""
        return {
            sa: ecu.name for ecu in self.ecus for sa in ecu.source_addresses
        }

    @property
    def ecu_names(self) -> list[str]:
        return [ecu.name for ecu in self.ecus]

    def ecu_named(self, name: str) -> EcuDefinition:
        for ecu in self.ecus:
            if ecu.name == name:
                return ecu
        raise DatasetError(f"{self.name} has no ECU named {name!r}")

    def transceiver_of(self, name: str) -> TransceiverParams:
        return self.ecu_named(name).transceiver

    def capture_chain(
        self, truncate_bits: int | None = DEFAULT_TRUNCATE_BITS
    ) -> CaptureChain:
        """Build the digitizer chain matching this vehicle's hardware."""
        return CaptureChain(
            synthesis=SynthesisConfig(
                bitrate=self.bitrate,
                sample_rate=self.sample_rate,
                max_frame_bits=truncate_bits,
            ),
            adc=AdcConfig(resolution_bits=self.resolution_bits),
            noise=self.noise,
        )


def _schedule(priority: int, pgn: int, sa: int, period_s: float, phase_s: float) -> MessageSchedule:
    return MessageSchedule(
        j1939_id=J1939Id(priority=priority, pgn=pgn, source_address=sa),
        period_s=period_s,
        phase_s=phase_s,
        jitter_s=period_s * 0.02,
    )


def vehicle_a() -> VehicleConfig:
    """The Vehicle A stand-in: 5 distinct ECUs, 20 MS/s, 16-bit capture.

    Fingerprint geometry (dominant levels): ECU1 (2.02 V) and ECU4
    (2.07 V) are the closest pair, then ECU0 (1.92 V) vs ECU1.  ECUs 0
    and 2 get an order-of-magnitude larger temperature coefficient than
    the rest, matching Figure 4.6's drift ranking.
    """
    ecu0 = TransceiverParams(
        name="ECU0",
        v_dominant=1.92,
        v_recessive=0.012,
        rise=EdgeDynamics(1.90e6, 0.62),
        fall=EdgeDynamics(1.05e6, 1.10),
        temp_coeff_v_per_c=-3.2e-4,
        temp_coeff_freq_per_c=8e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecu1 = TransceiverParams(
        name="ECU1",
        v_dominant=2.025,
        v_recessive=0.006,
        rise=EdgeDynamics(2.10e6, 0.74),
        fall=EdgeDynamics(1.15e6, 1.05),
        temp_coeff_v_per_c=-0.5e-4,
        temp_coeff_freq_per_c=2e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecu2 = TransceiverParams(
        name="ECU2",
        v_dominant=2.24,
        v_recessive=0.018,
        rise=EdgeDynamics(1.70e6, 0.55),
        fall=EdgeDynamics(0.95e6, 1.20),
        temp_coeff_v_per_c=-2.9e-4,
        temp_coeff_freq_per_c=7e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecu3 = TransceiverParams(
        name="ECU3",
        v_dominant=1.78,
        v_recessive=0.004,
        rise=EdgeDynamics(2.40e6, 0.86),
        fall=EdgeDynamics(1.30e6, 0.95),
        temp_coeff_v_per_c=-0.4e-4,
        temp_coeff_freq_per_c=1.5e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecu4 = TransceiverParams(
        name="ECU4",
        v_dominant=2.060,
        v_recessive=0.009,
        rise=EdgeDynamics(2.20e6, 0.78),
        fall=EdgeDynamics(1.20e6, 1.02),
        temp_coeff_v_per_c=-0.6e-4,
        temp_coeff_freq_per_c=2.5e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecus = (
        # ECU0 is the engine control module (paper Section 4.4.1); it
        # also claims the engine-retarder SA, giving a multi-SA cluster.
        EcuDefinition(
            name="ECU0",
            transceiver=ecu0,
            schedules=(
                _schedule(3, PGN_EEC1, 0x00, 0.020, 0.000),
                _schedule(6, PGN_EEC2, 0x00, 0.050, 0.007),
                _schedule(6, PGN_ET1, 0x00, 0.100, 0.013),
                _schedule(6, PGN_DM1, 0x0F, 0.100, 0.031),
            ),
        ),
        EcuDefinition(
            name="ECU1",
            transceiver=ecu1,
            schedules=(
                _schedule(3, PGN_ETC1, 0x03, 0.020, 0.003),
                _schedule(6, PGN_CCVS, 0x03, 0.100, 0.041),
            ),
        ),
        EcuDefinition(
            name="ECU2",
            transceiver=ecu2,
            schedules=(
                _schedule(3, PGN_EBC1, 0x0B, 0.020, 0.006),
                _schedule(6, PGN_DM1, 0x0B, 0.100, 0.057),
            ),
        ),
        EcuDefinition(
            name="ECU3",
            transceiver=ecu3,
            schedules=(
                _schedule(6, PGN_CCVS, 0x17, 0.050, 0.011),
                _schedule(6, PGN_VEP1, 0x17, 0.050, 0.073),
            ),
        ),
        EcuDefinition(
            name="ECU4",
            transceiver=ecu4,
            schedules=(
                _schedule(6, PGN_CCVS, 0x21, 0.050, 0.017),
                _schedule(6, PGN_VEP1, 0x21, 0.050, 0.037),
                _schedule(7, PGN_DM1, 0x21, 0.100, 0.089),
            ),
        ),
    )
    return VehicleConfig(
        name="VehicleA",
        bitrate=250_000.0,
        sample_rate=20_000_000.0,
        resolution_bits=16,
        ecus=ecus,
        noise=QUIET_CHANNEL,
    )


def vehicle_b() -> VehicleConfig:
    """The Vehicle B stand-in: 8 similar ECUs, 10 MS/s, 12-bit capture.

    Dominant levels are packed into a 0.09 V band (pairs differ by as
    little as 12 mV) and the capture runs while driving (noisier
    channel).  The remaining separability lives in the edge dynamics —
    visible to the Mahalanobis metric, drowned for the Euclidean one,
    reproducing the Table 4.2 vs 4.4 contrast.
    """
    base_kwargs = dict(
        temp_coeff_v_per_c=-2e-4,
        temp_coeff_freq_per_c=6e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    specs = [
        # name, v_dom, v_rec, rise (f, zeta), fall (f, zeta).  Dominant
        # levels sit ~40-46 mV apart: comparable to the per-message
        # baseline wander of a driving capture, so the Euclidean metric
        # confuses neighbours while the covariance-aware Mahalanobis
        # metric still separates them.
        ("ECU0", 2.000, 0.002, (1.36e6, 0.720), (0.950e6, 1.050)),
        ("ECU1", 2.058, 0.012, (1.30e6, 0.700), (0.920e6, 1.070)),
        ("ECU2", 2.115, 0.005, (1.42e6, 0.735), (0.975e6, 1.040)),
        ("ECU3", 2.171, 0.015, (1.32e6, 0.710), (0.930e6, 1.065)),
        ("ECU4", 2.226, 0.008, (1.40e6, 0.730), (0.968e6, 1.045)),
        ("ECU5", 2.280, 0.018, (1.34e6, 0.715), (0.940e6, 1.060)),
        ("ECU6", 2.333, 0.004, (1.38e6, 0.725), (0.960e6, 1.055)),
        ("ECU7", 2.385, 0.014, (1.31e6, 0.705), (0.925e6, 1.068)),
    ]
    sas = [0x00, 0x03, 0x0B, 0x17, 0x21, 0x27, 0x31, 0x37]
    pgns = [PGN_EEC1, PGN_ETC1, PGN_EBC1, PGN_CCVS, PGN_VEP1, PGN_ET1, PGN_DM1, PGN_EEC2]
    ecus = []
    for index, (name, v_dom, v_rec, rise, fall) in enumerate(specs):
        transceiver = TransceiverParams(
            name=name,
            v_dominant=v_dom,
            v_recessive=v_rec,
            rise=EdgeDynamics(*rise),
            fall=EdgeDynamics(*fall),
            **base_kwargs,
        )
        sa = sas[index]
        schedules = (
            _schedule(3 if index < 3 else 6, pgns[index], sa, 0.020 + 0.010 * index, 0.001 * (index + 1)),
            _schedule(6, PGN_DM1 if index != 6 else PGN_CCVS, sa, 0.100 + 0.020 * index, 0.050 + 0.007 * index),
        )
        ecus.append(EcuDefinition(name=name, transceiver=transceiver, schedules=schedules))
    return VehicleConfig(
        name="VehicleB",
        bitrate=250_000.0,
        sample_rate=10_000_000.0,
        resolution_bits=12,
        ecus=tuple(ecus),
        noise=NOISY_CHANNEL,
    )


def sterling_acterra() -> VehicleConfig:
    """The 2006 Sterling Acterra two-ECU bus behind Figures 2.5 and 3.1."""
    ecu0 = TransceiverParams(
        name="ECU0",
        v_dominant=1.95,
        v_recessive=0.010,
        rise=EdgeDynamics(1.95e6, 0.65),
        fall=EdgeDynamics(1.08e6, 1.08),
        temp_coeff_v_per_c=-4e-4,
        temp_coeff_freq_per_c=1e-3,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecu1 = TransceiverParams(
        name="ECU1",
        v_dominant=2.18,
        v_recessive=0.006,
        rise=EdgeDynamics(2.30e6, 0.82),
        fall=EdgeDynamics(1.25e6, 0.98),
        temp_coeff_v_per_c=-2e-4,
        temp_coeff_freq_per_c=6e-4,
        batt_coeff_per_v=4e-4,
        load_coeff_v_per_a=1.2e-4,
    )
    ecus = (
        EcuDefinition(
            name="ECU0",
            transceiver=ecu0,
            schedules=(
                _schedule(3, PGN_EEC1, 0x00, 0.020, 0.000),
                _schedule(6, PGN_ET1, 0x00, 0.100, 0.013),
            ),
        ),
        EcuDefinition(
            name="ECU1",
            transceiver=ecu1,
            schedules=(
                _schedule(3, PGN_EBC1, 0x0B, 0.020, 0.005),
                _schedule(6, PGN_CCVS, 0x0B, 0.100, 0.047),
            ),
        ),
    )
    return VehicleConfig(
        name="SterlingActerra",
        bitrate=250_000.0,
        sample_rate=10_000_000.0,
        resolution_bits=16,
        ecus=ecus,
        noise=QUIET_CHANNEL,
    )
