"""Capture→extraction engine entry points.

Ties the batched renderer (:mod:`repro.perf.batch`), the deterministic
fan-out (:mod:`repro.perf.parallel`), the zero-copy hand-off
(:mod:`repro.perf.shm`) and the capture cache (:mod:`repro.perf.cache`)
into the library's dataset workflow:

* :func:`render_transmissions` — turn a scheduled transmission list
  into voltage traces, pad-batched per sender and fanned out over
  workers;
* :func:`capture_session_engine` — the engine-backed equivalent of
  :func:`repro.vehicles.dataset.capture_session`, with optional
  content-addressed caching;
* :func:`extract_many_parallel` — order-preserving parallel
  :func:`~repro.core.edge_extraction.extract_many`;
* :func:`capture_and_extract` — fused capture + extraction in a single
  worker pass (one IPC round per chunk instead of two).

The hot path is zero-copy end to end: the parent ships each worker a
small padded wire-bit matrix, the worker renders and quantizes its
whole chunk, writes the counts into a shared-memory segment and returns
only a :class:`~repro.perf.shm.ShmChunk` descriptor (plus the extracted
edge vectors when fused).  The parent reassembles
:class:`~repro.acquisition.trace.VoltageTrace` objects as views into
the shared pages and attaches the ground-truth metadata itself — frame
objects never cross the process boundary twice.

Every message draws from its own ``SeedSequence`` child (see
:mod:`repro.perf.parallel`), so traces are byte-identical across
``jobs`` values, pad-batched vs unbatched rendering, shared-memory vs
pickled hand-off, and cache hit vs miss.  Note this per-message seeding
scheme is deliberately *different* from the legacy ``capture_session``
path, which threads one sequential generator through all messages and
stays the default for existing seed-pinned results; pass ``jobs=`` to
opt into the engine.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.can.bus import BusTransmission, CanBus
from repro.can.frame import CanFrame
from repro.can.traffic import TrafficGenerator
from repro.core.edge_extraction import (
    ExtractedEdgeSet,
    ExtractionConfig,
    extract_many,
    extract_many_indexed,
    resolve_extract_impl,
)
from repro.errors import DatasetError
from repro.obs import get_registry
from repro.perf.batch import synthesize_waveform_matrix
from repro.perf.cache import CaptureCache, capture_cache_key
from repro.perf.parallel import (
    chunk_slices,
    parallel_map,
    resolve_jobs,
    rngs_for_slice,
)
from repro.perf.shm import get_arena, pack_arrays, resolve_shm
from repro.vehicles.dataset import CaptureSession
from repro.vehicles.profiles import DEFAULT_TRUNCATE_BITS, VehicleConfig

#: Transmission-plan memo hits (VPL401: metric names stay literal).
PLAN_MEMO_HITS_METRIC = "vprofile_perf_plan_memo_hits_total"

_SKIPPED_METRIC = "vprofile_extraction_skipped_total"
_SKIPPED_HELP = "Traces dropped by extract_many(skip_failures=True)"


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _effective_workers(jobs: int) -> int:
    """Worker processes to fan out to for a requested ``jobs``.

    ``jobs`` is a ceiling, not a demand: CPU-bound workers beyond the
    machine's usable CPU count only add context-switch thrash to the
    hot path, so the engine never oversubscribes.  Results are
    byte-identical either way — seeding is per message, not per worker.
    """
    return max(1, min(jobs, _usable_cpus()))


@dataclass(frozen=True, eq=False)
class _RenderChunk:
    """Picklable unit of work: render messages ``lo .. lo+n``.

    The batch path ships only the padded wire matrix plus per-row
    lengths/senders/starts — frames stay in the parent, which attaches
    metadata after the hand-off.  The unbatched reference path ships the
    frames themselves and renders one message at a time.
    """

    vehicle: VehicleConfig
    env: Environment
    truncate_bits: int | None
    seed: int
    lo: int
    # batch payload
    wire: np.ndarray | None  # (n, W) int8, padded recessive
    wire_lengths: tuple[int, ...]
    starts: tuple[float, ...]
    senders: tuple[str, ...]
    # unbatched payload
    messages: tuple[tuple[str, CanFrame, float], ...]  # (sender, frame, start_s)
    batch: bool
    extract: bool
    extraction: ExtractionConfig | None
    extract_impl: str | None
    skip_failures: bool
    use_shm: bool


#: Worker→parent result: (kind, payload, edges, skip ledger) where kind
#: selects the payload shape — "shm" carries a ShmChunk descriptor,
#: "rows" pickled counts arrays, "traces" full VoltageTrace objects.
_ChunkResult = tuple[
    str, Any, list[ExtractedEdgeSet] | None, list[tuple[int, str]]
]


def _render_chunk(task: _RenderChunk) -> _ChunkResult:
    chain = task.vehicle.capture_chain(task.truncate_bits)
    transceivers = {ecu.name: ecu.transceiver for ecu in task.vehicle.ecus}
    if task.batch:
        assert task.wire is not None
        n = task.wire.shape[0]
        rngs = rngs_for_slice(task.seed, task.lo, task.lo + n)
        counts_rows: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        groups: dict[str, list[int]] = {}
        for j, sender in enumerate(task.senders):
            groups.setdefault(sender, []).append(j)
        for sender, indices in groups.items():
            volts, n_samples = synthesize_waveform_matrix(
                task.wire[indices],
                transceivers[sender],
                chain.synthesis,
                env=task.env,
                noise=chain.noise,
                rngs=[rngs[j] for j in indices],
                wire_lengths=[task.wire_lengths[j] for j in indices],
            )
            # Quantization is elementwise (rint → clip → astype), so one
            # pass over the group's whole render buffer — scratch columns
            # included — is byte-identical to quantizing row by row, and
            # skips a concatenate/split round-trip.
            group_counts = chain.adc.quantize(volts)
            for i, j in enumerate(indices):
                counts_rows[j] = group_counts[i, : int(n_samples[i])]
        # Inline chunks (task.messages present) have the frames at hand
        # and skip the descriptor round entirely; cross-process chunks
        # leave metadata empty — the parent grafts it on after hand-off.
        traces = [
            VoltageTrace(
                counts=counts_rows[j],
                sample_rate=chain.synthesis.sample_rate,
                resolution_bits=chain.adc.resolution_bits,
                bitrate=chain.synthesis.bitrate,
                start_s=task.starts[j],
                metadata=(
                    {
                        "sender": transceivers[task.senders[j]].name,
                        "frame": task.messages[j][1],
                    }
                    if task.messages
                    else {}
                ),
            )
            for j in range(n)
        ]
    else:
        rngs = rngs_for_slice(
            task.seed, task.lo, task.lo + len(task.messages)
        )
        traces = [
            chain.capture_frame(
                frame,
                transceivers[sender],
                env=task.env,
                rng=rngs[j],
                start_s=start_s,
            )
            for j, (sender, frame, start_s) in enumerate(task.messages)
        ]
    edges: list[ExtractedEdgeSet] | None = None
    ledger: list[tuple[int, str]] = []
    if task.extract:
        edges, ledger = extract_many_indexed(
            traces,
            task.extraction,
            skip_failures=task.skip_failures,
            index_base=task.lo,
            impl=task.extract_impl,
        )
    if not task.batch or task.messages:
        return "traces", traces, edges, ledger
    if task.use_shm:
        return "shm", pack_arrays(counts_rows), edges, ledger
    return "rows", counts_rows, edges, ledger


def _run_engine(
    vehicle: VehicleConfig,
    messages: Sequence[tuple[str, CanFrame, float]],
    *,
    env: Environment,
    seed: int,
    truncate_bits: int | None,
    jobs: int | None,
    batch: bool,
    extract: bool,
    extraction: ExtractionConfig | None,
    skip_failures: bool,
    shm: bool | None = None,
) -> tuple[list[VoltageTrace], list[ExtractedEdgeSet] | None]:
    messages = tuple(messages)
    if not messages:
        return [], [] if extract else None
    n_workers = _effective_workers(resolve_jobs(jobs))
    inline = n_workers == 1
    # Inline chunks need no hand-off; shared memory engages only when
    # results actually cross a process boundary.
    use_shm = batch and not inline and resolve_shm(shm)
    # Resolve the walker implementation here, in the parent: persistent
    # pool workers inherit the environment of their fork, so reading
    # REPRO_EXTRACT_IMPL worker-side would go stale after the first run.
    extract_impl = resolve_extract_impl() if extract else None
    wire_matrix: np.ndarray | None = None
    wire_lengths: tuple[int, ...] = ()
    if batch:
        wires = [frame.stuffed_bits() for _, frame, _ in messages]
        wire_lengths = tuple(len(w) for w in wires)
        wire_matrix = np.ones(
            (len(messages), max(wire_lengths)), dtype=np.int8
        )
        for j, w in enumerate(wires):
            # bytes() packs the 0/1 ints at C speed; the row assignment
            # is then a memcpy instead of 100+ PyObject conversions.
            wire_matrix[j, : len(w)] = np.frombuffer(bytes(w), dtype=np.uint8)
    # One chunk per worker: big chunks amortise the per-chunk numpy setup
    # (and give the columnar extractor wide blocks); the persistent pool
    # keeps dispatch latency negligible.
    slices = chunk_slices(
        len(messages), n_workers, chunk_size=math.ceil(len(messages) / n_workers)
    )
    tasks = [
        _RenderChunk(
            vehicle=vehicle,
            env=env,
            truncate_bits=truncate_bits,
            seed=seed,
            lo=lo,
            wire=wire_matrix[lo:hi] if wire_matrix is not None else None,
            wire_lengths=wire_lengths[lo:hi],
            starts=tuple(start_s for _, _, start_s in messages[lo:hi]),
            senders=tuple(sender for sender, _, _ in messages[lo:hi]),
            # Cross-process batch chunks ship only the wire matrix;
            # inline (and unbatched) chunks keep the frames at hand.
            messages=messages[lo:hi] if (inline or not batch) else (),
            batch=batch,
            extract=extract,
            extraction=extraction,
            extract_impl=extract_impl,
            skip_failures=skip_failures,
            use_shm=use_shm,
        )
        for lo, hi in slices
    ]
    chunked = parallel_map(_render_chunk, tasks, jobs=n_workers, chunk_size=1)

    chain = vehicle.capture_chain(truncate_bits)
    transceiver_names = {
        ecu.name: ecu.transceiver.name for ecu in vehicle.ecus
    }
    traces: list[VoltageTrace] = []
    edges: list[ExtractedEdgeSet] | None = [] if extract else None
    n_skipped = 0
    for task, (kind, payload, chunk_edges, ledger) in zip(tasks, chunked):
        if kind == "traces":
            chunk_traces = payload
        else:
            counts_rows = (
                get_arena().attach(payload) if kind == "shm" else payload
            )
            chunk_traces = []
            for j, counts in enumerate(counts_rows):
                sender, frame, start_s = messages[task.lo + j]
                chunk_traces.append(
                    VoltageTrace(
                        counts=counts,
                        sample_rate=chain.synthesis.sample_rate,
                        resolution_bits=chain.adc.resolution_bits,
                        bitrate=chain.synthesis.bitrate,
                        start_s=start_s,
                        metadata={
                            "sender": transceiver_names[sender],
                            "frame": frame,
                        },
                    )
                )
        traces.extend(chunk_traces)
        if not extract:
            continue
        assert edges is not None
        if kind == "traces":
            edges.extend(chunk_edges or [])
        else:
            # Worker-side traces carried empty metadata; graft the
            # ground truth back on, skipping dropped messages.
            dropped = {index for index, _ in ledger}
            kept = [
                g
                for g in range(task.lo, task.lo + len(chunk_traces))
                if g not in dropped
            ]
            for edge, g in zip(chunk_edges or [], kept):
                edges.append(replace(edge, metadata=dict(traces[g].metadata)))
        n_skipped += len(ledger)
    if extract and n_skipped:
        # Ledgers survive the process boundary, unlike in-worker
        # counters; fold them into the metric exactly once.
        get_registry().counter(_SKIPPED_METRIC, help=_SKIPPED_HELP).inc(
            n_skipped
        )
    return traces, edges


#: Transmission planning is deterministic in (vehicle, duration, seed),
#: so repeated captures of the same run — benchmark sweeps over ``jobs``,
#: cache-miss/hit pairs — reuse the schedule instead of re-arbitrating.
_PLAN_MEMO_MAX = 8
_PLAN_MEMO: OrderedDict[str, list[BusTransmission]] = OrderedDict()
_PLAN_LOCK = threading.Lock()


def clear_plan_memo() -> None:
    """Drop all memoised transmission schedules (tests)."""
    with _PLAN_LOCK:
        _PLAN_MEMO.clear()


def plan_transmissions(
    vehicle: VehicleConfig, duration_s: float, *, seed: int = 0
) -> list[BusTransmission]:
    """The bus-arbitrated transmission schedule of a capture run.

    Identical to the planning half of
    :func:`repro.vehicles.dataset.capture_session`: traffic generation
    and arbitration are deterministic, so the schedule is memoised on
    ``(vehicle, duration, seed)`` — environment and truncation never
    influence planning — and a fresh list is returned per call.
    """
    if duration_s <= 0:
        raise DatasetError(f"duration must be positive, got {duration_s}")
    # The cache key digests the vehicle profile canonically; pinning the
    # env/truncation axes to constants leaves exactly the planning inputs.
    key = capture_cache_key(
        vehicle,
        duration_s=duration_s,
        env=NOMINAL_ENVIRONMENT,
        seed=seed,
        truncate_bits=None,
    )
    with _PLAN_LOCK:
        memoised = _PLAN_MEMO.get(key)
        if memoised is not None:
            _PLAN_MEMO.move_to_end(key)
            get_registry().counter(
                PLAN_MEMO_HITS_METRIC,
                help="Transmission schedules served from the plan memo",
            ).inc()
            return list(memoised)
    generator = TrafficGenerator(
        schedules=[
            (ecu.name, schedule)
            for ecu in vehicle.ecus
            for schedule in ecu.schedules
        ],
        seed=seed,
    )
    bus = CanBus(bitrate=vehicle.bitrate)
    plan = bus.schedule(generator.frames_until(duration_s))
    with _PLAN_LOCK:
        _PLAN_MEMO[key] = list(plan)
        _PLAN_MEMO.move_to_end(key)
        while len(_PLAN_MEMO) > _PLAN_MEMO_MAX:
            _PLAN_MEMO.popitem(last=False)
    return plan


def render_transmissions(
    vehicle: VehicleConfig,
    transmissions: Sequence[BusTransmission],
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    jobs: int | None = None,
    batch: bool = True,
    shm: bool | None = None,
) -> list[VoltageTrace]:
    """Render scheduled transmissions to voltage traces, in bus order."""
    traces, _ = _run_engine(
        vehicle,
        [(tx.sender, tx.frame, tx.start_s) for tx in transmissions],
        env=env,
        seed=seed,
        truncate_bits=truncate_bits,
        jobs=jobs,
        batch=batch,
        extract=False,
        extraction=None,
        skip_failures=False,
        shm=shm,
    )
    return traces


def capture_session_engine(
    vehicle: VehicleConfig,
    duration_s: float,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    jobs: int | None = None,
    batch: bool = True,
    cache: CaptureCache | None = None,
    shm: bool | None = None,
) -> CaptureSession:
    """Engine-backed capture: pad-batched, parallel, optionally cached.

    The cache key covers everything the output depends on (vehicle
    profile, environment, duration, seed, truncation, schema version)
    and deliberately *excludes* ``jobs``/``batch``/``shm`` — those
    change only how the work is scheduled and shipped, never the bytes
    produced.
    """
    key = None
    if cache is not None:
        key = capture_cache_key(
            vehicle,
            duration_s=duration_s,
            env=env,
            seed=seed,
            truncate_bits=truncate_bits,
        )
        cached = cache.get(key)
        if cached is not None:
            return CaptureSession(vehicle=vehicle, traces=cached, environment=env)
    transmissions = plan_transmissions(vehicle, duration_s, seed=seed)
    traces = render_transmissions(
        vehicle,
        transmissions,
        env=env,
        seed=seed,
        truncate_bits=truncate_bits,
        jobs=jobs,
        batch=batch,
        shm=shm,
    )
    if cache is not None and key is not None:
        cache.put(key, traces)
    return CaptureSession(vehicle=vehicle, traces=traces, environment=env)


def _extract_chunk(
    payload: tuple[
        tuple[VoltageTrace, ...], ExtractionConfig | None, bool, int, str
    ],
) -> tuple[list[ExtractedEdgeSet], list[tuple[int, str]]]:
    traces, config, skip_failures, lo, impl = payload
    return extract_many_indexed(
        list(traces),
        config,
        skip_failures=skip_failures,
        index_base=lo,
        impl=impl,
    )


def extract_many_parallel(
    traces: Sequence[VoltageTrace],
    config: ExtractionConfig | None = None,
    *,
    jobs: int | None = None,
    skip_failures: bool = False,
) -> list[ExtractedEdgeSet]:
    """Order-preserving parallel edge-set extraction.

    Extraction is deterministic, so chunked fan-out plus in-order
    reassembly returns exactly what serial
    :func:`~repro.core.edge_extraction.extract_many` would — including
    the failing message's run-global index in any raised
    :class:`~repro.errors.ExtractionError` and the skip count folded
    into ``vprofile_extraction_skipped_total``.
    """
    traces = list(traces)
    if not traces:
        return []
    if config is None:
        config = ExtractionConfig.for_trace(traces[0])
    n_workers = _effective_workers(resolve_jobs(jobs))
    if n_workers == 1:
        return extract_many(traces, config, skip_failures=skip_failures)
    impl = resolve_extract_impl()  # parent-side: see _run_engine
    payloads = [
        (tuple(traces[lo:hi]), config, skip_failures, lo, impl)
        for lo, hi in chunk_slices(len(traces), n_workers)
    ]
    chunked = parallel_map(_extract_chunk, payloads, jobs=n_workers, chunk_size=1)
    results = [edge for chunk, _ in chunked for edge in chunk]
    n_skipped = sum(len(ledger) for _, ledger in chunked)
    if n_skipped:
        get_registry().counter(_SKIPPED_METRIC, help=_SKIPPED_HELP).inc(
            n_skipped
        )
    return results


def capture_and_extract(
    vehicle: VehicleConfig,
    duration_s: float,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    extraction: ExtractionConfig | None = None,
    jobs: int | None = None,
    batch: bool = True,
    cache: CaptureCache | None = None,
    skip_failures: bool = False,
    shm: bool | None = None,
) -> tuple[CaptureSession, list[ExtractedEdgeSet]]:
    """Capture a session and extract its edge sets in one fused pass.

    Each worker chunk renders *and* extracts before returning, halving
    the IPC rounds of capture-then-extract.  On a cache hit the stored
    traces are extracted (extraction is cheap relative to synthesis).
    """
    if cache is not None:
        key = capture_cache_key(
            vehicle,
            duration_s=duration_s,
            env=env,
            seed=seed,
            truncate_bits=truncate_bits,
        )
        cached = cache.get(key)
        if cached is not None:
            session = CaptureSession(
                vehicle=vehicle, traces=cached, environment=env
            )
            edges = extract_many_parallel(
                cached, extraction, jobs=jobs, skip_failures=skip_failures
            )
            return session, edges
    transmissions = plan_transmissions(vehicle, duration_s, seed=seed)
    traces, edges = _run_engine(
        vehicle,
        [(tx.sender, tx.frame, tx.start_s) for tx in transmissions],
        env=env,
        seed=seed,
        truncate_bits=truncate_bits,
        jobs=jobs,
        batch=batch,
        extract=True,
        extraction=extraction,
        skip_failures=skip_failures,
        shm=shm,
    )
    if cache is not None:
        cache.put(key, traces)
    session = CaptureSession(vehicle=vehicle, traces=traces, environment=env)
    return session, edges or []


__all__ = [
    "PLAN_MEMO_HITS_METRIC",
    "clear_plan_memo",
    "plan_transmissions",
    "render_transmissions",
    "capture_session_engine",
    "extract_many_parallel",
    "capture_and_extract",
]
