"""Capture→extraction engine entry points.

Ties the batched renderer (:mod:`repro.perf.batch`), the deterministic
fan-out (:mod:`repro.perf.parallel`) and the capture cache
(:mod:`repro.perf.cache`) into the library's dataset workflow:

* :func:`render_transmissions` — turn a scheduled transmission list
  into voltage traces, batched per sender and fanned out over workers;
* :func:`capture_session_engine` — the engine-backed equivalent of
  :func:`repro.vehicles.dataset.capture_session`, with optional
  content-addressed caching;
* :func:`extract_many_parallel` — order-preserving parallel
  :func:`~repro.core.edge_extraction.extract_many`;
* :func:`capture_and_extract` — fused capture + extraction in a single
  worker pass (one IPC round per chunk instead of two).

Every message draws from its own ``SeedSequence`` child (see
:mod:`repro.perf.parallel`), so traces are byte-identical across
``jobs`` values, batched vs unbatched rendering, and cache hit vs miss.
Note this per-message seeding scheme is deliberately *different* from
the legacy ``capture_session`` path, which threads one sequential
generator through all messages and stays the default for existing
seed-pinned results; pass ``jobs=`` to opt into the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.acquisition.trace import VoltageTrace
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.can.bus import BusTransmission, CanBus
from repro.can.frame import CanFrame
from repro.can.traffic import TrafficGenerator
from repro.core.edge_extraction import (
    ExtractedEdgeSet,
    ExtractionConfig,
    extract_many,
)
from repro.errors import DatasetError
from repro.obs import get_registry
from repro.perf.batch import synthesize_waveform_batch
from repro.perf.cache import CaptureCache, capture_cache_key
from repro.perf.parallel import (
    chunk_slices,
    parallel_map,
    resolve_jobs,
    rngs_for_slice,
)
from repro.vehicles.dataset import CaptureSession
from repro.vehicles.profiles import DEFAULT_TRUNCATE_BITS, VehicleConfig


@dataclass(frozen=True)
class _RenderChunk:
    """Picklable unit of work: render messages ``lo .. lo+len(messages)``."""

    vehicle: VehicleConfig
    env: Environment
    truncate_bits: int | None
    seed: int
    lo: int
    messages: tuple[tuple[str, CanFrame, float], ...]  # (sender, frame, start_s)
    batch: bool
    extract: bool
    extraction: ExtractionConfig | None
    skip_failures: bool


def _render_chunk(
    task: _RenderChunk,
) -> tuple[list[VoltageTrace], list[ExtractedEdgeSet] | None]:
    chain = task.vehicle.capture_chain(task.truncate_bits)
    transceivers = {ecu.name: ecu.transceiver for ecu in task.vehicle.ecus}
    n = len(task.messages)
    rngs = rngs_for_slice(task.seed, task.lo, task.lo + n)
    traces: list[VoltageTrace] = [None] * n  # type: ignore[list-item]
    if task.batch:
        wires = [
            np.asarray(frame.stuffed_bits(), dtype=np.int8)
            for _, frame, _ in task.messages
        ]
        groups: dict[tuple[str, int], list[int]] = {}
        for j, (sender, _, _) in enumerate(task.messages):
            groups.setdefault((sender, wires[j].size), []).append(j)
        for (sender, _), indices in groups.items():
            transceiver = transceivers[sender]
            rows = synthesize_waveform_batch(
                np.stack([wires[j] for j in indices]),
                transceiver,
                chain.synthesis,
                env=task.env,
                noise=chain.noise,
                rngs=[rngs[j] for j in indices],
            )
            if len({row.size for row in rows}) == 1:
                # One elementwise quantize over the whole group is
                # byte-identical to quantizing row by row.
                counts_rows = list(chain.adc.quantize(np.stack(rows)))
            else:
                counts_rows = [chain.adc.quantize(volts) for volts in rows]
            for j, counts in zip(indices, counts_rows):
                _, frame, start_s = task.messages[j]
                traces[j] = VoltageTrace(
                    counts=counts,
                    sample_rate=chain.synthesis.sample_rate,
                    resolution_bits=chain.adc.resolution_bits,
                    bitrate=chain.synthesis.bitrate,
                    start_s=start_s,
                    metadata={"sender": transceiver.name, "frame": frame},
                )
    else:
        for j, (sender, frame, start_s) in enumerate(task.messages):
            traces[j] = chain.capture_frame(
                frame,
                transceivers[sender],
                env=task.env,
                rng=rngs[j],
                start_s=start_s,
            )
    edges: list[ExtractedEdgeSet] | None = None
    if task.extract:
        edges = extract_many(
            traces, task.extraction, skip_failures=task.skip_failures
        )
    return traces, edges


def _run_engine(
    vehicle: VehicleConfig,
    messages: Sequence[tuple[str, CanFrame, float]],
    *,
    env: Environment,
    seed: int,
    truncate_bits: int | None,
    jobs: int | None,
    batch: bool,
    extract: bool,
    extraction: ExtractionConfig | None,
    skip_failures: bool,
) -> tuple[list[VoltageTrace], list[ExtractedEdgeSet] | None]:
    messages = tuple(messages)
    if not messages:
        return [], [] if extract else None
    n_jobs = resolve_jobs(jobs)
    tasks = [
        _RenderChunk(
            vehicle=vehicle,
            env=env,
            truncate_bits=truncate_bits,
            seed=seed,
            lo=lo,
            messages=messages[lo:hi],
            batch=batch,
            extract=extract,
            extraction=extraction,
            skip_failures=skip_failures,
        )
        for lo, hi in chunk_slices(len(messages), n_jobs)
    ]
    chunked = parallel_map(_render_chunk, tasks, jobs=n_jobs, chunk_size=1)
    traces = [trace for chunk_traces, _ in chunked for trace in chunk_traces]
    edges: list[ExtractedEdgeSet] | None = None
    if extract:
        edges = [edge for _, chunk_edges in chunked for edge in chunk_edges or []]
        if skip_failures and n_jobs > 1 and len(edges) < len(traces):
            # In-worker counters die with the worker; recover the drop
            # count from the length difference.  (With jobs=1 the chunks
            # run inline and extract_many already counted.)
            get_registry().counter(
                "vprofile_extraction_skipped_total",
                help="Traces dropped by extract_many(skip_failures=True)",
            ).inc(len(traces) - len(edges))
    return traces, edges


def plan_transmissions(
    vehicle: VehicleConfig, duration_s: float, *, seed: int = 0
) -> list[BusTransmission]:
    """The bus-arbitrated transmission schedule of a capture run.

    Identical to the planning half of
    :func:`repro.vehicles.dataset.capture_session`: traffic generation
    and arbitration are cheap and deterministic, so they stay serial.
    """
    if duration_s <= 0:
        raise DatasetError(f"duration must be positive, got {duration_s}")
    generator = TrafficGenerator(
        schedules=[
            (ecu.name, schedule)
            for ecu in vehicle.ecus
            for schedule in ecu.schedules
        ],
        seed=seed,
    )
    bus = CanBus(bitrate=vehicle.bitrate)
    return bus.schedule(generator.frames_until(duration_s))


def render_transmissions(
    vehicle: VehicleConfig,
    transmissions: Sequence[BusTransmission],
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    jobs: int | None = None,
    batch: bool = True,
) -> list[VoltageTrace]:
    """Render scheduled transmissions to voltage traces, in bus order."""
    traces, _ = _run_engine(
        vehicle,
        [(tx.sender, tx.frame, tx.start_s) for tx in transmissions],
        env=env,
        seed=seed,
        truncate_bits=truncate_bits,
        jobs=jobs,
        batch=batch,
        extract=False,
        extraction=None,
        skip_failures=False,
    )
    return traces


def capture_session_engine(
    vehicle: VehicleConfig,
    duration_s: float,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    jobs: int | None = None,
    batch: bool = True,
    cache: CaptureCache | None = None,
) -> CaptureSession:
    """Engine-backed capture: batched, parallel, optionally cached.

    The cache key covers everything the output depends on (vehicle
    profile, environment, duration, seed, truncation, schema version)
    and deliberately *excludes* ``jobs``/``batch`` — those change only
    how the work is scheduled, never the bytes produced.
    """
    key = None
    if cache is not None:
        key = capture_cache_key(
            vehicle,
            duration_s=duration_s,
            env=env,
            seed=seed,
            truncate_bits=truncate_bits,
        )
        cached = cache.get(key)
        if cached is not None:
            return CaptureSession(vehicle=vehicle, traces=cached, environment=env)
    transmissions = plan_transmissions(vehicle, duration_s, seed=seed)
    traces = render_transmissions(
        vehicle,
        transmissions,
        env=env,
        seed=seed,
        truncate_bits=truncate_bits,
        jobs=jobs,
        batch=batch,
    )
    if cache is not None and key is not None:
        cache.put(key, traces)
    return CaptureSession(vehicle=vehicle, traces=traces, environment=env)


def _extract_chunk(
    payload: tuple[tuple[VoltageTrace, ...], ExtractionConfig | None, bool],
) -> list[ExtractedEdgeSet]:
    traces, config, skip_failures = payload
    return extract_many(list(traces), config, skip_failures=skip_failures)


def extract_many_parallel(
    traces: Sequence[VoltageTrace],
    config: ExtractionConfig | None = None,
    *,
    jobs: int | None = None,
    skip_failures: bool = False,
) -> list[ExtractedEdgeSet]:
    """Order-preserving parallel edge-set extraction.

    Extraction is deterministic, so chunked fan-out plus in-order
    reassembly returns exactly what serial
    :func:`~repro.core.edge_extraction.extract_many` would.
    """
    traces = list(traces)
    if not traces:
        return []
    if config is None:
        config = ExtractionConfig.for_trace(traces[0])
    n_jobs = resolve_jobs(jobs)
    if n_jobs == 1:
        return extract_many(traces, config, skip_failures=skip_failures)
    payloads = [
        (tuple(traces[lo:hi]), config, skip_failures)
        for lo, hi in chunk_slices(len(traces), n_jobs)
    ]
    chunked = parallel_map(_extract_chunk, payloads, jobs=n_jobs, chunk_size=1)
    results = [edge for chunk in chunked for edge in chunk]
    if skip_failures and len(results) < len(traces):
        get_registry().counter(
            "vprofile_extraction_skipped_total",
            help="Traces dropped by extract_many(skip_failures=True)",
        ).inc(len(traces) - len(results))
    return results


def capture_and_extract(
    vehicle: VehicleConfig,
    duration_s: float,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    seed: int = 0,
    truncate_bits: int | None = DEFAULT_TRUNCATE_BITS,
    extraction: ExtractionConfig | None = None,
    jobs: int | None = None,
    batch: bool = True,
    cache: CaptureCache | None = None,
    skip_failures: bool = False,
) -> tuple[CaptureSession, list[ExtractedEdgeSet]]:
    """Capture a session and extract its edge sets in one fused pass.

    Each worker chunk renders *and* extracts before returning, halving
    the IPC rounds of capture-then-extract.  On a cache hit the stored
    traces are extracted (extraction is cheap relative to synthesis).
    """
    if cache is not None:
        key = capture_cache_key(
            vehicle,
            duration_s=duration_s,
            env=env,
            seed=seed,
            truncate_bits=truncate_bits,
        )
        cached = cache.get(key)
        if cached is not None:
            session = CaptureSession(
                vehicle=vehicle, traces=cached, environment=env
            )
            edges = extract_many_parallel(
                cached, extraction, jobs=jobs, skip_failures=skip_failures
            )
            return session, edges
    transmissions = plan_transmissions(vehicle, duration_s, seed=seed)
    traces, edges = _run_engine(
        vehicle,
        [(tx.sender, tx.frame, tx.start_s) for tx in transmissions],
        env=env,
        seed=seed,
        truncate_bits=truncate_bits,
        jobs=jobs,
        batch=batch,
        extract=True,
        extraction=extraction,
        skip_failures=skip_failures,
    )
    if cache is not None:
        cache.put(key, traces)
    session = CaptureSession(vehicle=vehicle, traces=traces, environment=env)
    return session, edges or []


__all__ = [
    "plan_transmissions",
    "render_transmissions",
    "capture_session_engine",
    "extract_many_parallel",
    "capture_and_extract",
]
