"""Content-addressed on-disk cache for simulated capture archives.

Regenerating a capture is pure computation over a small, fully explicit
input: the vehicle profile (transceivers, schedules, capture hardware),
the environment, the duration, the seed, and the renderer's schema
version.  Hashing a canonical encoding of those inputs therefore
*content-addresses* the output — two runs with equal keys are guaranteed
byte-identical, so the second can load the first's archive instead of
re-simulating.

Entries are ordinary trace archives (``.npz``, see
:mod:`repro.acquisition.archive`) named by their key digest under a
cache root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/captures``).
Invalidation is automatic: any change to the vehicle, config, seed or
:data:`CACHE_SCHEMA_VERSION` changes the key.  Hits, misses and LRU
evictions are counted in :mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.acquisition.archive import load_traces, save_traces
from repro.acquisition.trace import VoltageTrace
from repro.analog.environment import Environment
from repro.errors import AcquisitionError, CacheError
from repro.obs import get_registry
from repro.vehicles.profiles import VehicleConfig

#: Bump whenever renderer or archive output changes for equal inputs
#: (new noise terms, framing changes, ...) — stale entries then miss.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache root.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Cache-outcome counters, spelled as constants so the metric namespace
#: stays literal and grep-able (VPL401).
CACHE_HITS_METRIC = "vprofile_cache_hits_total"
CACHE_MISSES_METRIC = "vprofile_cache_misses_total"
CACHE_EVICTIONS_METRIC = "vprofile_cache_evictions_total"


def _jsonable(obj: Any) -> Any:
    """Canonical JSON-compatible form of a key component.

    Dataclasses are tagged with their type name so that two configs with
    coincidentally equal fields but different semantics hash apart;
    floats rely on ``repr`` round-tripping (shortest exact form), which
    is what :func:`json.dumps` emits.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded = {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not f.name.startswith("_")
        }
        encoded["__type__"] = type(obj).__qualname__
        return encoded
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, bytes):
        return obj.hex()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    raise CacheError(f"cannot build a stable cache key from {type(obj).__name__}")


def stable_digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    canonical = json.dumps(
        _jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def capture_cache_key(
    vehicle: VehicleConfig,
    *,
    duration_s: float,
    env: Environment,
    seed: int,
    truncate_bits: int | None,
) -> str:
    """The content address of one simulated capture session."""
    return stable_digest(
        {
            "kind": "capture_session",
            "schema": CACHE_SCHEMA_VERSION,
            "vehicle": vehicle,
            "duration_s": duration_s,
            "env": env,
            "seed": seed,
            "truncate_bits": truncate_bits,
        }
    )


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro/captures``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "captures"


class CaptureCache:
    """A directory of capture archives addressed by content digest.

    Parameters
    ----------
    root:
        Cache directory; created on first use.  Defaults to
        :func:`default_cache_root`.
    max_entries:
        Soft bound on stored archives; the least recently *used* entries
        beyond it are evicted on :meth:`put` (access bumps mtime).
    """

    def __init__(self, root: str | Path | None = None, max_entries: int = 64):
        if max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root) if root is not None else default_cache_root()
        self.max_entries = max_entries
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot create cache root {self.root}: {exc}") from exc

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _count(self, metric: str, help: str, n: int = 1) -> None:
        get_registry().counter(metric, help=help).inc(n)

    def get(self, key: str) -> list[VoltageTrace] | None:
        """Load the traces stored under ``key``; ``None`` on a miss.

        A corrupt entry is treated as a miss and removed (counted as an
        eviction) so that one bad write cannot wedge a key forever.
        """
        path = self.path_for(key)
        if not path.exists():
            self._count(CACHE_MISSES_METRIC, "Capture-cache misses")
            return None
        try:
            traces = load_traces(path)
        except AcquisitionError:
            path.unlink(missing_ok=True)
            self._count(CACHE_EVICTIONS_METRIC, "Capture-cache evictions")
            self._count(CACHE_MISSES_METRIC, "Capture-cache misses")
            return None
        os.utime(path)  # bump LRU recency
        self._count(CACHE_HITS_METRIC, "Capture-cache hits")
        return traces

    def put(self, key: str, traces: list[VoltageTrace]) -> Path:
        """Store ``traces`` under ``key`` and enforce ``max_entries``."""
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp.npz")
        try:
            save_traces(tmp, traces)
            tmp.replace(path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        self._evict()
        return path

    def _evict(self) -> None:
        entries = sorted(
            self.root.glob("*.npz"), key=lambda p: p.stat().st_mtime, reverse=True
        )
        stale = entries[self.max_entries :]
        for path in stale:
            path.unlink(missing_ok=True)
        if stale:
            self._count(CACHE_EVICTIONS_METRIC, "Capture-cache evictions", len(stale))

    def info(self) -> dict[str, Any]:
        """Cache root, entry count and total size for ``cli cache info``."""
        entries = list(self.root.glob("*.npz"))
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(p.stat().st_size for p in entries),
            "max_entries": self.max_entries,
            "schema_version": CACHE_SCHEMA_VERSION,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.npz"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_ENV_VAR",
    "CACHE_HITS_METRIC",
    "CACHE_MISSES_METRIC",
    "CACHE_EVICTIONS_METRIC",
    "CaptureCache",
    "capture_cache_key",
    "default_cache_root",
    "stable_digest",
]
