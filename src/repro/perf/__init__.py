"""High-throughput capture→extraction engine.

Dataset generation — not classification — dominates wall-clock for every
table/figure benchmark: each message walks ``synthesize_waveform`` → ADC
→ ``extract_edge_set`` one at a time.  This package turns that path into
a fast, cached, parallel engine while keeping results reproducible:

* :mod:`repro.perf.batch` — render N same-sender messages in one
  vectorized NumPy pass, byte-identical to per-message synthesis;
* :mod:`repro.perf.parallel` — deterministic ``ProcessPoolExecutor``
  fan-out (chunked work, per-message ``SeedSequence`` children, ordered
  reassembly) plus ``REPRO_JOBS`` resolution for the CLI ``--jobs`` flag;
* :mod:`repro.perf.engine` — the capture/extraction entry points wired
  into datasets, the eval suite and the streaming pre-render path;
* :mod:`repro.perf.cache` — a content-addressed on-disk capture cache
  keyed by (vehicle, capture config, seed, schema version).

Determinism contract: for a fixed seed, every ``jobs`` value, the
batched and unbatched renderers, and cache hits vs fresh simulation all
produce byte-identical traces — message *i* always draws from
``default_rng(SeedSequence(entropy=seed, spawn_key=(i,)))``, independent
of how messages are grouped into batches or worker chunks.
"""

from __future__ import annotations

from repro.perf.batch import (
    synthesize_waveform_batch,
    synthesize_waveform_matrix,
)
from repro.perf.cache import (
    CACHE_SCHEMA_VERSION,
    CaptureCache,
    capture_cache_key,
    stable_digest,
)
from repro.perf.engine import (
    capture_and_extract,
    capture_session_engine,
    extract_many_parallel,
    render_transmissions,
)
from repro.perf.parallel import (
    default_jobs,
    message_seed,
    parallel_map,
    resolve_jobs,
    spawn_seeds,
)

__all__ = [
    "synthesize_waveform_batch",
    "synthesize_waveform_matrix",
    "CaptureCache",
    "CACHE_SCHEMA_VERSION",
    "capture_cache_key",
    "stable_digest",
    "capture_session_engine",
    "capture_and_extract",
    "extract_many_parallel",
    "render_transmissions",
    "parallel_map",
    "resolve_jobs",
    "default_jobs",
    "spawn_seeds",
    "message_seed",
]
