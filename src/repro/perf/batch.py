"""Batched waveform synthesis: N messages in one vectorized pass.

:func:`repro.analog.waveform.synthesize_waveform` renders one message at
a time.  Its arithmetic, however, is entirely elementwise (``where`` /
``take`` / ``exp`` / ``cos`` / ``sin`` and friends), so a group of
messages sharing one transceiver and one wire-bit length can be rendered
as a ``(G, S)`` matrix and sliced back into rows — every element goes
through exactly the same scalar operations in the same order, which
keeps the output *byte-identical* to the serial path.

The only per-message work left is the RNG draws: each message owns an
independent generator, and the draw order of the serial path (sampling
phase → message offsets → sample noise) is replayed per generator in a
cheap Python loop around the vectorized render.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analog.channel import ChannelNoise
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.analog.transceiver import TransceiverParams
from repro.analog.waveform import SynthesisConfig, step_response
from repro.errors import PerfError


def synthesize_waveform_batch(
    wire_matrix: np.ndarray,
    transceiver: TransceiverParams,
    config: SynthesisConfig,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    noise: ChannelNoise | None = None,
    rngs: Sequence[np.random.Generator],
    wire_lengths: Sequence[int] | None = None,
) -> list[np.ndarray]:
    """Render ``G`` messages in one vectorized pass, sliced into rows.

    Thin wrapper over :func:`synthesize_waveform_matrix`.  Rows are
    views into the shared ``(G, S_max)`` render buffer — callers must
    copy before mutating (the engine only reads/quantizes them).
    """
    volts, n_samples = synthesize_waveform_matrix(
        wire_matrix,
        transceiver,
        config,
        env=env,
        noise=noise,
        rngs=rngs,
        wire_lengths=wire_lengths,
    )
    return [volts[i, : int(n_samples[i])] for i in range(volts.shape[0])]


def synthesize_waveform_matrix(
    wire_matrix: np.ndarray,
    transceiver: TransceiverParams,
    config: SynthesisConfig,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    noise: ChannelNoise | None = None,
    rngs: Sequence[np.random.Generator],
    wire_lengths: Sequence[int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Render ``G`` messages into one padded ``(G, S_max)`` matrix.

    Parameters
    ----------
    wire_matrix:
        ``(G, n_wire)`` stuffed wire bits, one message per row (0 =
        dominant, 1 = recessive, starting at SOF).  Without
        ``wire_lengths`` every row uses all ``n_wire`` bits; with it,
        row ``i`` uses its first ``wire_lengths[i]`` bits and the rest
        is padding — mixed-length traffic renders as one pad-batched
        matrix.
    transceiver:
        Fingerprint of the transmitting ECU (shared by the whole group).
    config / env / noise:
        As for :func:`~repro.analog.waveform.synthesize_waveform`.
    rngs:
        One independent generator per message.  Each generator sees
        exactly the draws the serial path would make: the sampling
        phase, then the per-message offsets, then the sample noise.
    wire_lengths:
        Per-row wire-bit counts for pad-batched mixed-length groups.
        Padding is forced recessive, which makes a padded row's bit
        sequence ``[prefix 1s, wire, pad 1s, suffix 1s]`` agree with the
        serial row ``[prefix 1s, wire, suffix 1s]`` on every bit index
        the row actually samples — so outputs stay byte-identical.

    Returns
    -------
    ``(volts, n_samples)``: row ``i`` of the ``(G, S_max)`` matrix holds
    the message's ``n_samples[i]`` samples — byte-identical to calling
    ``synthesize_waveform(row[:length], ...)`` with the matching
    generator — followed by scratch columns.  Callers applying a further
    *elementwise* stage (the engine's ADC quantisation) can run it on
    the whole matrix, scratch included, and slice afterwards, skipping a
    concatenate/split round-trip without changing a byte of any row.
    """
    wire = np.asarray(wire_matrix, dtype=np.int8)
    if wire.ndim != 2:
        raise PerfError(f"wire_matrix must be 2-D, got shape {wire.shape}")
    n_messages = wire.shape[0]
    if wire.shape[1] == 0:
        raise PerfError("cannot synthesise an empty bit sequence")
    if len(rngs) != n_messages:
        raise PerfError(
            f"need one rng per message: {n_messages} messages, {len(rngs)} rngs"
        )
    lengths: np.ndarray | None = None
    if wire_lengths is not None:
        lengths = np.asarray(wire_lengths, dtype=np.int64)
        if lengths.shape != (n_messages,):
            raise PerfError(
                f"need one wire length per message: {n_messages} messages, "
                f"{lengths.size} lengths"
            )
        if lengths.min() < 1 or lengths.max() > wire.shape[1]:
            raise PerfError(
                f"wire lengths must be in [1, {wire.shape[1]}], got "
                f"[{lengths.min()}, {lengths.max()}]"
            )
    if config.max_frame_bits is not None:
        wire = wire[:, : config.max_frame_bits]
        if lengths is not None:
            lengths = np.minimum(lengths, config.max_frame_bits)
    if lengths is not None:
        if int(lengths.min()) == wire.shape[1]:
            lengths = None  # all rows full width: plain equal-length batch
        else:
            # Force padding recessive so the pad region is
            # indistinguishable from the idle suffix.
            wire = np.where(
                np.arange(wire.shape[1])[None, :] < lengths[:, None],
                wire,
                np.int8(1),
            )

    # Per-message draws, replaying the serial path's order per generator:
    # the phase, then (when noise is modelled) the fused offsets + noise
    # block.  Each message owns its generator, so drawing its noise here
    # — before the render instead of after, as the serial path does —
    # consumes exactly the same stream.
    phases = np.empty(n_messages)
    for i, rng in enumerate(rngs):
        # random() consumes and returns the exact double uniform(0, 1)
        # would, without the range-scaling call overhead.
        phases[i] = rng.random()
    spb = config.samples_per_bit
    if lengths is None:
        n_bits = np.full(
            n_messages,
            config.idle_prefix_bits + wire.shape[1] + config.idle_suffix_bits,
            dtype=np.int64,
        )
    else:
        n_bits = config.idle_prefix_bits + lengths + config.idle_suffix_bits
    n_samples = np.floor(n_bits * spb - phases).astype(np.int64)
    baselines = np.zeros(n_messages)
    gains = np.ones(n_messages)
    noise_matrix: np.ndarray | None = None
    if noise is not None:
        baselines, gains, noise_matrix = noise.sample_message_matrix(
            n_samples.tolist(), list(rngs)
        )

    bits = np.concatenate(
        [
            np.ones((n_messages, config.idle_prefix_bits), dtype=np.int8),
            wire,
            np.ones((n_messages, config.idle_suffix_bits), dtype=np.int8),
        ],
        axis=1,
    )
    v_dom, v_rec = transceiver.effective_levels(env)
    rise_dyn, fall_dyn = transceiver.effective_dynamics(env)

    levels = np.where(bits == 0, v_dom * gains[:, None], v_rec)
    prev_bits = np.concatenate(
        [np.ones((n_messages, 1), dtype=np.int8), bits[:, :-1]], axis=1
    )
    prev_levels = np.concatenate(
        [np.full((n_messages, 1), v_rec, dtype=float), levels[:, :-1]], axis=1
    )
    is_transition = bits != prev_bits

    s_max = int(n_samples.max())
    # Rows with fewer samples carry trailing scratch columns; every op is
    # elementwise, so the first n_samples[i] entries of row i match the
    # serial render exactly and the tail is sliced off at the end.
    positions = np.arange(s_max)[None, :] + phases[:, None]
    # positions are non-negative by construction, so only the upper clip
    # (scratch tail columns of short rows) is needed.  floor lands in the
    # division's own buffer — one fewer (G, S) temporary.
    scaled = positions / spb
    np.floor(scaled, out=scaled)
    bit_index = scaled.astype(np.int64)
    np.minimum(bit_index, (n_bits - 1)[:, None], out=bit_index)
    # Reuse `positions` as the dt buffer and `scaled` as the product
    # buffer — same arithmetic, fewer (G, S) temporaries.
    np.multiply(bit_index, spb, out=scaled)
    positions -= scaled
    positions /= config.sample_rate
    dt = positions

    # One flat index serves every gather (ravel is a view on C-ordered
    # matrices, and take is cheaper than re-deriving fancy indices per
    # take_along_axis call).  The levels gather doubles as the volts
    # output: step_response writes below read disjoint mask positions,
    # so aliasing is safe and saves a full (G, S) copy.  bit_index is
    # dead after this point, so the flat index lands in its buffer.
    np.add(
        bit_index,
        np.arange(n_messages, dtype=np.int64)[:, None] * levels.shape[1],
        out=bit_index,
    )
    flat_bit = bit_index
    sampled_levels = levels.ravel().take(flat_bit)
    volts = sampled_levels
    # One int8 gather encodes both edge kinds: 1 = rising, 2 = falling;
    # the has-edge tests run on the small (G, n_bits) matrix before
    # gathering instead of on the (G, S) sample grid after.
    edge_kind = np.where(is_transition, np.where(bits == 0, np.int8(1), np.int8(2)), np.int8(0))
    sampled_kind = edge_kind.ravel().take(flat_bit)
    if edge_kind.any():
        sampled_prev = prev_levels.ravel().take(flat_bit)
        for kind, dyn in ((np.int8(1), rise_dyn), (np.int8(2), fall_dyn)):
            if (edge_kind == kind).any():
                mask = sampled_kind == kind
                volts[mask] = step_response(
                    dt[mask],
                    sampled_prev[mask],
                    sampled_levels[mask],
                    dyn,
                )

    volts += baselines[:, None]
    if noise_matrix is not None:
        volts[:, : noise_matrix.shape[1]] += noise_matrix

    return volts, n_samples
