"""Batched waveform synthesis: N messages in one vectorized pass.

:func:`repro.analog.waveform.synthesize_waveform` renders one message at
a time.  Its arithmetic, however, is entirely elementwise (``where`` /
``take`` / ``exp`` / ``cos`` / ``sin`` and friends), so a group of
messages sharing one transceiver and one wire-bit length can be rendered
as a ``(G, S)`` matrix and sliced back into rows — every element goes
through exactly the same scalar operations in the same order, which
keeps the output *byte-identical* to the serial path.

The only per-message work left is the RNG draws: each message owns an
independent generator, and the draw order of the serial path (sampling
phase → message offsets → sample noise) is replayed per generator in a
cheap Python loop around the vectorized render.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analog.channel import ChannelNoise
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.analog.transceiver import TransceiverParams
from repro.analog.waveform import SynthesisConfig, step_response
from repro.errors import PerfError


def synthesize_waveform_batch(
    wire_matrix: np.ndarray,
    transceiver: TransceiverParams,
    config: SynthesisConfig,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    noise: ChannelNoise | None = None,
    rngs: Sequence[np.random.Generator],
) -> list[np.ndarray]:
    """Render ``G`` messages of identical length in one vectorized pass.

    Parameters
    ----------
    wire_matrix:
        ``(G, n_wire)`` stuffed wire bits, one message per row (0 =
        dominant, 1 = recessive, starting at SOF).  All rows must share
        one length; group heterogeneous captures by length first.
    transceiver:
        Fingerprint of the transmitting ECU (shared by the whole group).
    config / env / noise:
        As for :func:`~repro.analog.waveform.synthesize_waveform`.
    rngs:
        One independent generator per message.  Each generator sees
        exactly the draws the serial path would make: the sampling
        phase, then the per-message offsets, then the sample noise.

    Returns
    -------
    list of ``G`` float vectors, byte-identical to calling
    ``synthesize_waveform(row, ...)`` with the matching generator.
    """
    wire = np.asarray(wire_matrix, dtype=np.int8)
    if wire.ndim != 2:
        raise PerfError(f"wire_matrix must be 2-D, got shape {wire.shape}")
    n_messages = wire.shape[0]
    if wire.shape[1] == 0:
        raise PerfError("cannot synthesise an empty bit sequence")
    if len(rngs) != n_messages:
        raise PerfError(
            f"need one rng per message: {n_messages} messages, {len(rngs)} rngs"
        )
    if config.max_frame_bits is not None:
        wire = wire[:, : config.max_frame_bits]

    # Per-message draws, replaying the serial path's order per generator:
    # the phase, then (when noise is modelled) the fused offsets + noise
    # block.  Each message owns its generator, so drawing its noise here
    # — before the render instead of after, as the serial path does —
    # consumes exactly the same stream.
    phases = np.empty(n_messages)
    for i, rng in enumerate(rngs):
        # random() consumes and returns the exact double uniform(0, 1)
        # would, without the range-scaling call overhead.
        phases[i] = rng.random()
    spb = config.samples_per_bit
    n_bits = config.idle_prefix_bits + wire.shape[1] + config.idle_suffix_bits
    n_samples = np.floor(n_bits * spb - phases).astype(np.int64)
    baselines = np.zeros(n_messages)
    gains = np.ones(n_messages)
    noise_rows: list[np.ndarray] | None = None
    if noise is not None:
        baselines, gains, noise_rows = noise.sample_message_batch(
            n_samples.tolist(), list(rngs)
        )

    bits = np.concatenate(
        [
            np.ones((n_messages, config.idle_prefix_bits), dtype=np.int8),
            wire,
            np.ones((n_messages, config.idle_suffix_bits), dtype=np.int8),
        ],
        axis=1,
    )
    v_dom, v_rec = transceiver.effective_levels(env)
    rise_dyn, fall_dyn = transceiver.effective_dynamics(env)

    levels = np.where(bits == 0, v_dom * gains[:, None], v_rec)
    prev_bits = np.concatenate(
        [np.ones((n_messages, 1), dtype=np.int8), bits[:, :-1]], axis=1
    )
    prev_levels = np.concatenate(
        [np.full((n_messages, 1), v_rec, dtype=float), levels[:, :-1]], axis=1
    )
    is_transition = bits != prev_bits

    s_max = int(n_samples.max())
    # Rows with fewer samples carry trailing scratch columns; every op is
    # elementwise, so the first n_samples[i] entries of row i match the
    # serial render exactly and the tail is sliced off at the end.
    positions = np.arange(s_max)[None, :] + phases[:, None]
    bit_index = np.floor(positions / spb).astype(np.int64)
    bit_index = np.clip(bit_index, 0, n_bits - 1)
    # Reuse `positions` as the dt buffer — same arithmetic, fewer (G, S)
    # temporaries.
    positions -= bit_index * spb
    positions /= config.sample_rate
    dt = positions

    # One gather serves as both the sampled level and the volts output
    # (astype copies, so mutating volts leaves sampled_levels intact);
    # the rising/falling tests run on the small (G, n_bits) matrices
    # before gathering instead of on the (G, S) sample grid after.
    sampled_levels = np.take_along_axis(levels, bit_index, axis=1)
    volts = sampled_levels.astype(float)
    # One int8 gather encodes both edge kinds: 1 = rising, 2 = falling.
    edge_kind = np.where(is_transition, np.where(bits == 0, np.int8(1), np.int8(2)), np.int8(0))
    sampled_kind = np.take_along_axis(edge_kind, bit_index, axis=1)
    rising = sampled_kind == 1
    falling = sampled_kind == 2
    if np.any(rising) or np.any(falling):
        sampled_prev = np.take_along_axis(prev_levels, bit_index, axis=1)
        for mask, dyn in ((rising, rise_dyn), (falling, fall_dyn)):
            if np.any(mask):
                volts[mask] = step_response(
                    dt[mask],
                    sampled_prev[mask],
                    sampled_levels[mask],
                    dyn,
                )

    volts += baselines[:, None]

    out: list[np.ndarray] = []
    if noise_rows is not None:
        for i in range(n_messages):
            out.append(volts[i, : int(n_samples[i])] + noise_rows[i])
    else:
        for i in range(n_messages):
            out.append(volts[i, : int(n_samples[i])].copy())
    return out
