"""Deterministic process-parallel fan-out primitives.

Parallelism must never change results, so seeding is content-addressed:
message *i* of a run always draws from
``default_rng(SeedSequence(entropy=seed, spawn_key=(i,)))`` — the same
child NumPy's ``SeedSequence(seed).spawn(n)[i]`` would produce — no
matter which worker renders it or how the work is chunked.  Workers
therefore need only ``(seed, index range)`` to re-derive their
generators, and reassembling chunk results in submission order restores
the exact serial output.

``REPRO_JOBS`` provides the process-wide default for the CLI ``--jobs``
flag; an explicit flag always wins.
"""

from __future__ import annotations

import atexit
import math
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from functools import lru_cache
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import PerfError

#: Environment variable supplying the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int | None:
    """The ``REPRO_JOBS`` default for ``--jobs``, or ``None`` if unset."""
    raw = os.environ.get(JOBS_ENV_VAR)
    if raw is None or raw.strip() == "":
        return None
    try:
        jobs = int(raw)
    except ValueError as exc:
        raise PerfError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from exc
    if jobs < 1:
        raise PerfError(f"{JOBS_ENV_VAR} must be >= 1, got {jobs}")
    return jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        return default_jobs() or 1
    if jobs < 1:
        raise PerfError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


@lru_cache(maxsize=1 << 16)
def message_seed(seed: int, index: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` owned by message ``index``.

    Identical to ``SeedSequence(seed).spawn(n)[index]`` for any
    ``n > index``, but O(1): spawned children differ from their parent
    only by the appended ``spawn_key`` element.  That documented
    equivalence is why the hand-forged child below is waived from
    VPL202 — random access to message ``index`` must not spawn (and
    throw away) ``index`` siblings first.

    The cache is sound because :class:`~numpy.random.SeedSequence` is
    immutable and ``generate_state`` is pure — every ``default_rng``
    built from the shared instance sees the same entropy pool.  Repeat
    captures of one run seed (golden re-renders, cache-miss/hit pairs)
    skip the per-message entropy hashing entirely.
    """
    return np.random.SeedSequence(entropy=seed, spawn_key=(index,))  # vpl: ignore[VPL202]


def spawn_seeds(seed: int, n: int, start: int = 0) -> list[np.random.SeedSequence]:
    """Children ``start .. start+n`` of the run seed, one per message."""
    return [message_seed(seed, start + i) for i in range(n)]


def _apply_chunk(payload: tuple[Callable[[Any], Any], list[Any]]) -> list[Any]:
    func, chunk = payload
    return [func(item) for item in chunk]


def chunk_slices(n_items: int, jobs: int, chunk_size: int | None = None) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` work slices covering ``range(n_items)``.

    Chunks are a few per worker so a slow chunk cannot serialise the
    pool, while staying large enough to amortise pickling.
    """
    if n_items <= 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, math.ceil(n_items / (jobs * 4)))
    return [(lo, min(lo + chunk_size, n_items)) for lo in range(0, n_items, chunk_size)]


# Pools are warm state, not per-call scaffolding: forking workers costs
# tens of milliseconds, which would dwarf a zero-copy hand-off.  One
# executor per worker count lives for the process (or until
# shutdown_pools()), guarded by a lock for thread-safe laziness.
_POOL_LOCK = threading.Lock()
_POOLS: dict[int, ProcessPoolExecutor] = {}


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent executor for ``workers`` processes (lazily forked)."""
    if workers < 1:
        raise PerfError(f"workers must be >= 1, got {workers}")
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Tear down every persistent pool (tests, or to reclaim workers)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def _drop_pool(pool: ProcessPoolExecutor) -> None:
    with _POOL_LOCK:
        for workers, known in list(_POOLS.items()):
            if known is pool:
                del _POOLS[workers]
    pool.shutdown(wait=False, cancel_futures=True)


def parallel_map(
    func: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> list[Any]:
    """``[func(x) for x in items]`` fanned out over worker processes.

    ``func`` must be a module-level (picklable) callable.  Items are
    grouped into contiguous chunks, dispatched to a persistent
    :class:`~concurrent.futures.ProcessPoolExecutor` (workers stay warm
    across calls), and reassembled in submission order, so the result is
    exactly the serial list.  With ``jobs=1`` (or a single item)
    everything runs inline — no pool, no pickling.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    slices = chunk_slices(len(items), jobs, chunk_size)
    payloads = [(func, items[lo:hi]) for lo, hi in slices]
    pool = get_pool(min(jobs, len(payloads)))
    try:
        chunked = list(pool.map(_apply_chunk, payloads))
    except BrokenExecutor:
        # A dead worker poisons the whole executor; retire it and retry
        # once on a fresh pool before giving up.
        _drop_pool(pool)
        pool = get_pool(min(jobs, len(payloads)))
        chunked = list(pool.map(_apply_chunk, payloads))
    return [result for chunk in chunked for result in chunk]


def rngs_for_slice(
    seed: int, lo: int, hi: int
) -> list[np.random.Generator]:
    """Per-message generators for messages ``lo .. hi`` of a run."""
    return [np.random.default_rng(message_seed(seed, i)) for i in range(lo, hi)]


__all__ = [
    "JOBS_ENV_VAR",
    "default_jobs",
    "resolve_jobs",
    "message_seed",
    "spawn_seeds",
    "chunk_slices",
    "get_pool",
    "shutdown_pools",
    "parallel_map",
    "rngs_for_slice",
]
