"""Zero-copy chunk hand-off over POSIX shared memory.

:mod:`repro.perf.parallel` workers used to pickle whole
:class:`~repro.acquisition.trace.VoltageTrace` lists back to the parent —
every sample array serialized, copied through a pipe, and deserialized.
This module replaces that hand-off: a worker packs its chunk's sample
arrays into one :class:`multiprocessing.shared_memory.SharedMemory`
segment and returns only a tiny :class:`ShmChunk` descriptor (segment
name, dtype, per-array lengths).  The parent attaches the segment and
reassembles ``np.ndarray`` views without copying a byte.

Lifecycle (crash-safe by construction)
--------------------------------------
* The **worker** creates the segment, copies its rows in, closes its own
  mapping, and unregisters the name from its ``resource_tracker`` —
  ownership transfers to the descriptor.  If the worker dies *before*
  the unregister, its tracker unlinks the segment on exit.
* The **parent** attaches through :class:`SharedArena` which immediately
  ``unlink``\\ s the name: the kernel frees the pages as soon as the last
  mapping closes, so even ``SIGKILL`` leaves nothing behind in
  ``/dev/shm``.  When the last view dies, a ``weakref.finalize`` hook
  parks the mapping on the dead list (the hook runs *during* the view
  base's deallocation, while its buffer export is still alive, so
  closing there would always raise ``BufferError``); the next arena
  operation — :meth:`SharedArena.attach`, :meth:`SharedArena.sweep`,
  :meth:`SharedArena.close`, or the ``atexit`` sweep — unmaps it.
* Segments that cannot be closed (a view still borrows the buffer at
  interpreter shutdown) are counted in the leak metric rather than
  silently dropped.

All accounting is exported under literal ``vprofile_perf_shm_*`` metric
names (VPL401).
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro.errors import PerfError
from repro.obs import get_registry

#: Shared-memory hand-off counters/gauges, spelled as constants so the
#: metric namespace stays literal and grep-able (VPL401).
SHM_SEGMENTS_METRIC = "vprofile_perf_shm_segments_total"
SHM_BYTES_METRIC = "vprofile_perf_shm_bytes_total"
SHM_OPEN_METRIC = "vprofile_perf_shm_segments_open"
SHM_LEAKED_METRIC = "vprofile_perf_shm_segments_leaked_total"

#: Environment switch for the zero-copy hand-off (CLI ``--no-shm``).
SHM_ENV_VAR = "REPRO_SHM"

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


def resolve_shm(shm: bool | None = None) -> bool:
    """Whether the engine should hand chunks off over shared memory.

    Explicit argument wins, then ``REPRO_SHM``, then the default of
    ``True`` — shared memory changes only how bytes travel, never the
    bytes, so it is safe to prefer.
    """
    if shm is not None:
        return bool(shm)
    raw = os.environ.get(SHM_ENV_VAR)
    if raw is None or raw.strip() == "":
        return True
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise PerfError(
        f"{SHM_ENV_VAR} must be one of {sorted(_TRUTHY | _FALSY)}, got {raw!r}"
    )


@dataclass(frozen=True)
class ShmChunk:
    """Descriptor of one packed chunk: everything but the bytes.

    Attributes
    ----------
    name:
        Kernel name of the shared segment holding the concatenated rows.
    dtype:
        Numpy dtype string shared by every row.
    lengths:
        Element count of each row, in order; offsets are the prefix sums.
    """

    name: str
    dtype: str
    lengths: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return int(sum(self.lengths)) * np.dtype(self.dtype).itemsize


def pack_arrays(arrays: Sequence[np.ndarray]) -> ShmChunk:
    """Copy 1-D arrays of one dtype into a fresh shared segment.

    Called in the worker.  On return the worker holds no mapping and its
    resource tracker no longer knows the name: the returned descriptor
    is the sole owner, and the parent's :class:`SharedArena` must attach
    (and unlink) it exactly once.
    """
    if not arrays:
        raise PerfError("cannot pack an empty chunk")
    dtype = arrays[0].dtype
    for a in arrays:
        if a.ndim != 1:
            raise PerfError(f"only 1-D arrays can be packed, got shape {a.shape}")
        if a.dtype != dtype:
            raise PerfError(
                f"mixed dtypes in one chunk: {dtype} vs {a.dtype}"
            )
    lengths = tuple(int(a.size) for a in arrays)
    total = sum(lengths) * dtype.itemsize
    segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    try:
        flat = np.frombuffer(segment.buf, dtype=dtype, count=sum(lengths))
        offset = 0
        for a in arrays:
            flat[offset : offset + a.size] = a
            offset += a.size
        del flat
        descriptor = ShmChunk(
            name=segment.name, dtype=dtype.str, lengths=lengths
        )
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    segment.close()
    # Ownership moves to the descriptor; without this the worker's
    # resource tracker would unlink the segment under the parent.
    resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    return descriptor


class SharedArena:
    """Parent-side lifecycle manager for attached segments.

    ``attach`` maps a descriptor, unlinks the kernel name right away
    (crash safety: the pages die with the last mapping), and returns
    zero-copy row views.  When the last view is garbage collected the
    mapping moves to the dead list and is unmapped by the next arena
    operation (:meth:`attach` sweeps on entry); :meth:`close`
    force-closes whatever remains and counts still-borrowed segments as
    leaks.  One process-wide instance (:func:`get_arena`) is swept at
    interpreter exit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._dead: list[shared_memory.SharedMemory] = []

    def attach(self, chunk: ShmChunk) -> list[np.ndarray]:
        """Map a descriptor and return its rows as zero-copy views."""
        self.sweep()
        try:
            segment = shared_memory.SharedMemory(name=chunk.name)
        except FileNotFoundError as exc:
            raise PerfError(
                f"shared segment {chunk.name!r} has vanished (worker died "
                f"before hand-off, or the chunk was attached twice)"
            ) from exc
        registry = get_registry()
        registry.counter(
            SHM_SEGMENTS_METRIC, help="Shared-memory chunks handed off"
        ).inc()
        registry.counter(
            SHM_BYTES_METRIC, help="Bytes handed off through shared memory"
        ).inc(chunk.nbytes)
        with self._lock:
            self._segments[chunk.name] = segment
        self._set_open_gauge()
        # The name is not needed anymore: mappings keep the pages alive.
        segment.unlink()
        # The parent's resource tracker never owned this segment; the
        # attach above must not re-register it (Python >= 3.13 attaches
        # with track=False, older versions do not register on attach).
        total = sum(chunk.lengths)
        base = np.frombuffer(segment.buf, dtype=np.dtype(chunk.dtype), count=total)
        base.flags.writeable = False
        weakref.finalize(base, self._release, chunk.name)
        views: list[np.ndarray] = []
        offset = 0
        for length in chunk.lengths:
            views.append(base[offset : offset + length])
            offset += length
        return views

    def _release(self, name: str) -> None:
        """Park one mapping once its last view has been collected.

        Runs as a ``weakref.finalize`` callback *during* the base
        array's deallocation — the buffer export it holds on the
        mapping is released only after the callback returns, so closing
        here would raise ``BufferError`` every time.  The segment moves
        to the dead list instead; :meth:`sweep` unmaps it.
        """
        with self._lock:
            segment = self._segments.pop(name, None)
            if segment is None:
                return
            self._dead.append(segment)
        self._set_open_gauge()

    def sweep(self) -> int:
        """Unmap segments whose last view has been collected.

        Returns how many mappings were closed.  A segment that still
        reports a borrowed buffer (its base array is mid-collection on
        another thread) stays parked for the next sweep.
        """
        with self._lock:
            dead, self._dead = self._dead, []
        closed = 0
        survivors: list[shared_memory.SharedMemory] = []
        for segment in dead:
            try:
                segment.close()
                closed += 1
            except BufferError:  # pragma: no cover - mid-collection race
                survivors.append(segment)
        if survivors:
            with self._lock:
                self._dead.extend(survivors)
        return closed

    def close(self) -> int:
        """Force-close every remaining mapping; returns the leak count.

        Dead-list segments are swept first.  Segments whose buffers are
        still borrowed by live views cannot be unmapped — they are
        counted as leaked and parked on the dead list, where a later
        :meth:`sweep` can still reclaim them once the views die (and
        the OS reclaims them at process exit regardless, since every
        name was already unlinked at attach time).
        """
        self.sweep()
        with self._lock:
            segments = list(self._segments.items())
            self._segments.clear()
        leaked = 0
        still_borrowed: list[shared_memory.SharedMemory] = []
        for _name, segment in segments:
            try:
                segment.close()
            except BufferError:
                leaked += 1
                still_borrowed.append(segment)
        if still_borrowed:
            # Dropping the last reference would fire SharedMemory.__del__
            # against the still-exported buffer; park them instead.
            with self._lock:
                self._dead.extend(still_borrowed)
        if leaked:
            get_registry().counter(
                SHM_LEAKED_METRIC,
                help="Shared segments whose views outlived the arena",
            ).inc(leaked)
        self._set_open_gauge()
        return leaked

    @property
    def open_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    def _set_open_gauge(self) -> None:
        get_registry().gauge(
            SHM_OPEN_METRIC, help="Shared segments currently mapped"
        ).set(self.open_segments)


_ARENA = SharedArena()


def get_arena() -> SharedArena:
    """The process-wide arena used by the engine's parallel hand-off."""
    return _ARENA


@atexit.register
def _sweep_arena() -> None:  # pragma: no cover - interpreter shutdown
    _ARENA.close()


__all__ = [
    "ShmChunk",
    "SharedArena",
    "pack_arrays",
    "get_arena",
    "resolve_shm",
    "SHM_ENV_VAR",
    "SHM_SEGMENTS_METRIC",
    "SHM_BYTES_METRIC",
    "SHM_OPEN_METRIC",
    "SHM_LEAKED_METRIC",
]
