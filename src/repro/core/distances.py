"""Distance metrics and incremental cluster statistics.

Implements the two metrics the paper compares (Section 2.2.2):

* Euclidean distance, eq. (2.1) — treats every edge-set sample equally;
* Mahalanobis distance, eq. (2.2) — whitens by the cluster covariance,
  which down-weights the jittery edge samples and exploits neighbour
  correlations.  This is the metric behind the paper's headline results.

Also provides :class:`RunningStats`, the streaming mean / covariance /
inverse-covariance tracker that Algorithm 4 (online model update,
Section 5.3, eq. 5.1) builds on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SingularCovarianceError, TrainingError

#: Reciprocal-condition-number cutoff below which a covariance matrix is
#: reported singular (mirrors the paper's failures at <= 10-bit data).
RCOND_LIMIT = 1e-12


def euclidean_distance(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean distance between two edge sets (paper eq. 2.1)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    diff = x - y
    return float(np.sqrt(diff @ diff))


def euclidean_distances(points: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distances from ``points`` (n, d) to ``center``."""
    diffs = np.asarray(points, dtype=float) - np.asarray(center, dtype=float)
    return np.sqrt(np.einsum("ij,ij->i", diffs, diffs))


def invert_covariance(cov: np.ndarray, *, shrinkage: float = 0.0) -> np.ndarray:
    """Invert a covariance matrix, raising on singularity.

    Parameters
    ----------
    cov:
        Symmetric positive semi-definite (d, d) matrix.
    shrinkage:
        Optional Ledoit-Wolf-style ridge: ``(1-s)*cov + s*tr(cov)/d*I``.
        The paper uses no regularisation (and therefore hits singular
        matrices at 10-bit resolution); shrinkage is provided as an
        opt-in extension.

    Raises
    ------
    SingularCovarianceError
        When the (possibly shrunk) matrix is numerically singular.
    """
    cov = np.asarray(cov, dtype=float)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise TrainingError(f"covariance must be square, got shape {cov.shape}")
    if shrinkage:
        if not 0.0 <= shrinkage <= 1.0:
            raise TrainingError(f"shrinkage must be in [0, 1], got {shrinkage}")
        ridge = np.trace(cov) / cov.shape[0]
        cov = (1.0 - shrinkage) * cov + shrinkage * ridge * np.eye(cov.shape[0])
    # Use eigh-based reciprocal condition estimate: covariance matrices
    # from coarse quantisation are exactly rank-deficient, and np.linalg
    # .inv would return garbage rather than fail for near-singular input.
    eigvals = np.linalg.eigvalsh(cov)
    if eigvals[0] <= 0 or eigvals[0] / max(eigvals[-1], np.finfo(float).tiny) < RCOND_LIMIT:
        raise SingularCovarianceError(
            "covariance matrix is singular (the paper reports the same "
            "failure for captures at 10-bit resolution and below); "
            "increase resolution, add training data, or pass shrinkage"
        )
    return np.linalg.inv(cov)


def mahalanobis_distance(x: np.ndarray, mean: np.ndarray, inv_cov: np.ndarray) -> float:
    """Mahalanobis distance of ``x`` from a distribution (paper eq. 2.2)."""
    diff = np.asarray(x, dtype=float) - np.asarray(mean, dtype=float)
    value = diff @ inv_cov @ diff
    # Guard tiny negative values from floating-point asymmetry.
    return float(np.sqrt(max(value, 0.0)))


def mahalanobis_distances(points: np.ndarray, mean: np.ndarray, inv_cov: np.ndarray) -> np.ndarray:
    """Row-wise Mahalanobis distances from ``points`` (n, d) to a cluster."""
    diffs = np.asarray(points, dtype=float) - np.asarray(mean, dtype=float)
    values = np.einsum("ij,jk,ik->i", diffs, inv_cov, diffs)
    return np.sqrt(np.maximum(values, 0.0))


class RunningStats:
    """Streaming mean and covariance over edge sets of one cluster.

    Uses Welford-style updates for the mean and the paper's eq. (5.1)
    recurrence for the covariance:

        Sigma_n = ((x_n - mean_{n-1})(x_n - mean_n)^T + (n-1) Sigma_{n-1}) / n

    The inverse covariance is maintained incrementally with a
    Sherman-Morrison rank-1 update so that Algorithm 4 never pays a full
    O(d^3) inversion per message.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise TrainingError(f"dimension must be positive, got {dim}")
        self.dim = dim
        self.count = 0
        self.mean = np.zeros(dim)
        self._scatter = np.zeros((dim, dim))  # sum of (x-mean) outer products
        self._inv_cov: np.ndarray | None = None

    @classmethod
    def from_data(cls, points: np.ndarray) -> "RunningStats":
        """Initialise from a batch (n, d) of edge sets."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        stats = cls(points.shape[1])
        stats.count = points.shape[0]
        stats.mean = points.mean(axis=0)
        centered = points - stats.mean
        stats._scatter = centered.T @ centered
        return stats

    @property
    def covariance(self) -> np.ndarray:
        """Population covariance (divide by n, matching eq. 5.1)."""
        if self.count < 1:
            raise TrainingError("no observations accumulated")
        return self._scatter / self.count

    def inverse_covariance(self, *, shrinkage: float = 0.0) -> np.ndarray:
        """Inverse covariance, cached until the next update."""
        if self._inv_cov is None:
            self._inv_cov = invert_covariance(self.covariance, shrinkage=shrinkage)
        return self._inv_cov

    def update(self, x: np.ndarray) -> None:
        """Fold one new edge set into the statistics (paper eq. 5.1).

        When an inverse covariance is already cached it is updated in
        place via Sherman-Morrison instead of being recomputed.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise TrainingError(f"expected shape ({self.dim},), got {x.shape}")
        prev_mean = self.mean.copy()
        self.count += 1
        self.mean = prev_mean + (x - prev_mean) / self.count
        u = x - prev_mean
        v = x - self.mean
        self._scatter = self._scatter + np.outer(u, v)
        if self._inv_cov is not None and self.count > 1:
            self._inv_cov = _sherman_morrison_cov_update(
                self._inv_cov, u, v, self.count
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunningStats(dim={self.dim}, count={self.count})"


def _sherman_morrison_cov_update(
    inv_cov: np.ndarray, u: np.ndarray, v: np.ndarray, n: int
) -> np.ndarray:
    """Update ``inv(Sigma)`` after ``Sigma_n = ((n-1)Sigma + u v^T) / n``.

    With A = (n-1)/n * Sigma and the rank-1 term u v^T / n:

        inv(A + uv^T/n) = inv(A) - (inv(A) u v^T inv(A) / n) / (1 + v^T inv(A) u / n)

    where inv(A) = n/(n-1) * inv(Sigma).

    Raises
    ------
    SingularCovarianceError
        If the update would make the matrix singular (denominator ~ 0).
    """
    scale = n / (n - 1)
    inv_a = inv_cov * scale
    inv_a_u = inv_a @ u
    v_inv_a = v @ inv_a
    denom = 1.0 + (v @ inv_a_u) / n
    if abs(denom) < 1e-300:
        raise SingularCovarianceError("rank-1 covariance update became singular")
    return inv_a - np.outer(inv_a_u, v_inv_a) / (n * denom)
