"""Online model update — Algorithm 4 of the paper (Section 5.3).

Environmental drift (temperature, battery voltage) slowly shifts the bus
voltage.  Instead of retraining from scratch, Algorithm 4 folds new,
verified-legitimate edge sets into the existing model: the per-cluster
edge-set count, mean, (inverse) covariance — via eq. (5.1) — and the
max-distance threshold are all updated in place.

The paper cautions that updates lose leverage as the count ``N_n``
grows, and recommends retraining once ``N_n`` reaches an upper bound
``M``; :class:`OnlineUpdater` enforces that bound per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.distances import mahalanobis_distance, _sherman_morrison_cov_update
from repro.core.edge_extraction import ExtractedEdgeSet
from repro.core.model import Metric, VProfileModel
from repro.errors import DetectionError, TrainingError
from repro.obs.spans import stage_timer


@dataclass
class UpdateReport:
    """What one batch update did.

    Attributes
    ----------
    updated:
        Edge sets folded in, per cluster name.
    saturated:
        Clusters that hit the retrain bound ``M`` during the batch (their
        remaining edge sets were skipped).
    skipped_unknown_sa:
        Edge sets whose SA is not in the model LUT (Algorithm 4 assumes
        no new SAs; these are surfaced instead of silently dropped).
    """

    updated: dict[str, int] = field(default_factory=dict)
    saturated: list[str] = field(default_factory=list)
    skipped_unknown_sa: int = 0


class OnlineUpdater:
    """Applies Algorithm 4 to a Mahalanobis :class:`VProfileModel`.

    Parameters
    ----------
    model:
        The model to update *in place*.
    retrain_bound:
        The upper bound ``M`` on a cluster's edge-set count; once
        reached, further updates to that cluster are refused and the
        caller should retrain.  ``None`` disables the bound.
    observer:
        Optional ``(source_address, accepted)`` callback invoked for
        every edge set offered to the updater — ``accepted`` is True
        when the sample was folded in, False when it was refused
        (saturated cluster or unknown SA).  The profile-health monitor
        hangs off this hook to track update-acceptance rates.
    """

    def __init__(
        self,
        model: VProfileModel,
        retrain_bound: int | None = None,
        observer: Callable[[int, bool], None] | None = None,
    ):
        if model.metric is not Metric.MAHALANOBIS:
            raise DetectionError(
                "Algorithm 4 updates covariances; it requires a Mahalanobis model"
            )
        if retrain_bound is not None and retrain_bound < 2:
            raise TrainingError("retrain bound M must be at least 2")
        self.model = model
        self.retrain_bound = retrain_bound
        self.observer = observer

    def needs_retrain(self, cluster_index: int) -> bool:
        """True when the cluster's count has reached the bound ``M``."""
        if self.retrain_bound is None:
            return False
        return self.model.clusters[cluster_index].count >= self.retrain_bound

    def update(self, edge_sets: Sequence[ExtractedEdgeSet]) -> UpdateReport:
        """UpdateModel from Algorithm 4: fold a batch of new edge sets in.

        Edge sets are grouped by cluster through the model's SA LUT and
        applied one at a time (count, mean, inverse covariance, max
        distance), exactly following the pseudocode.

        Observability: each call times into
        ``vprofile_stage_seconds{stage="update"}`` when a metrics
        registry is enabled.
        """
        with stage_timer("update"):
            return self._update(edge_sets)

    def _update(self, edge_sets: Sequence[ExtractedEdgeSet]) -> UpdateReport:
        report = UpdateReport()
        for edge_set in edge_sets:
            cluster_index = self.model.cluster_of_sa(edge_set.source_address)
            if cluster_index is None:
                report.skipped_unknown_sa += 1
                if self.observer is not None:
                    self.observer(edge_set.source_address, False)
                continue
            name = self.model.clusters[cluster_index].name
            if self.needs_retrain(cluster_index):
                if name not in report.saturated:
                    report.saturated.append(name)
                if self.observer is not None:
                    self.observer(edge_set.source_address, False)
                continue
            self._update_cluster(cluster_index, edge_set.vector)
            report.updated[name] = report.updated.get(name, 0) + 1
            if self.observer is not None:
                self.observer(edge_set.source_address, True)
        return report

    def _update_cluster(self, cluster_index: int, x: np.ndarray) -> None:
        """Apply one edge set to one cluster (the body of Algorithm 4)."""
        cluster = self.model.clusters[cluster_index]
        x = np.asarray(x, dtype=float)
        if x.shape != cluster.mean.shape:
            raise TrainingError(
                f"edge set has shape {x.shape}, model expects {cluster.mean.shape}"
            )
        prev_count = cluster.count
        prev_mean = cluster.mean
        new_count = prev_count + 1
        new_mean = prev_mean + (x - prev_mean) / new_count

        u = x - prev_mean  # uses the *previous* mean, per eq. (5.1)
        v = x - new_mean   # and the *new* mean
        new_cov = (np.outer(u, v) + prev_count * cluster.covariance) / new_count
        new_inv = _sherman_morrison_cov_update(cluster.inv_covariance, u, v, new_count)

        cluster.count = new_count
        cluster.mean = new_mean
        cluster.covariance = new_cov
        cluster.inv_covariance = new_inv
        distance = mahalanobis_distance(x, new_mean, new_inv)
        cluster.max_distance = max(cluster.max_distance, distance)
