"""Model training — Algorithm 2 of the paper.

Training consumes the (SA, edge set) pairs produced by preprocessing and
builds a :class:`~repro.core.model.VProfileModel`:

1. cluster edge sets by the ECU that sent them — either via a supplied
   SA->ECU lookup table (the "fortunate" branch of Algorithm 2) or by
   grouping per SA and agglomeratively merging SA groups whose mean edge
   sets are close (ClusterByDist);
2. compute each cluster's mean (and, for Mahalanobis, covariance and its
   inverse);
3. record each cluster's maximum training distance from its mean — the
   detection threshold.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.distances import (
    euclidean_distance,
    euclidean_distances,
    invert_covariance,
    mahalanobis_distances,
)
from repro.core.edge_extraction import ExtractedEdgeSet
from repro.core.model import ClusterProfile, Metric, VProfileModel
from repro.errors import TrainingError


@dataclass(frozen=True)
class TrainingData:
    """Edge sets with their claimed source addresses, in array form."""

    vectors: np.ndarray  # (n, d)
    source_addresses: np.ndarray  # (n,)

    def __post_init__(self) -> None:
        vectors = np.atleast_2d(np.asarray(self.vectors, dtype=float))
        sas = np.asarray(self.source_addresses, dtype=np.int64)
        if vectors.shape[0] != sas.shape[0]:
            raise TrainingError(
                f"{vectors.shape[0]} edge sets but {sas.shape[0]} SAs"
            )
        if vectors.shape[0] == 0:
            raise TrainingError("no training edge sets supplied")
        object.__setattr__(self, "vectors", vectors)
        object.__setattr__(self, "source_addresses", sas)

    @classmethod
    def from_edge_sets(cls, edge_sets: Sequence[ExtractedEdgeSet]) -> "TrainingData":
        """Stack extracted edge sets into contiguous arrays."""
        if not edge_sets:
            raise TrainingError("no training edge sets supplied")
        return cls(
            vectors=np.stack([e.vector for e in edge_sets]),
            source_addresses=np.array(
                [e.source_address for e in edge_sets], dtype=np.int64
            ),
        )


def train_model(
    data: TrainingData | Sequence[ExtractedEdgeSet],
    *,
    metric: Metric | str = Metric.MAHALANOBIS,
    sa_clusters: Mapping[int, str] | None = None,
    cluster_distance_threshold: float | None = None,
    shrinkage: float = 0.0,
    min_cluster_size: int = 2,
) -> VProfileModel:
    """Algorithm 2: train a vProfile model.

    Parameters
    ----------
    data:
        Training edge sets (either a :class:`TrainingData` or raw
        extraction results).
    metric:
        Euclidean or Mahalanobis.
    sa_clusters:
        The "fortunate" lookup table: SA -> ECU name.  When omitted,
        clusters are discovered by pairwise distance between SA-group
        means (ClusterByDist).
    cluster_distance_threshold:
        Distance below which two SA groups merge during ClusterByDist.
        ``None`` picks the threshold automatically at the largest
        relative gap in the sorted pairwise distances.
    shrinkage:
        Optional covariance regularisation in [0, 1]; 0 matches the
        paper (and can raise :class:`SingularCovarianceError` on coarse
        data).
    min_cluster_size:
        Minimum edge sets a cluster needs for usable statistics.
    """
    if not isinstance(data, TrainingData):
        data = TrainingData.from_edge_sets(data)
    metric = Metric(metric)

    sa_groups = _group_by_sa(data)
    if sa_clusters is not None:
        cluster_map = _cluster_by_lut(sa_groups, sa_clusters)
    else:
        sa_means = {
            sa: data.vectors[rows].mean(axis=0) for sa, rows in sa_groups.items()
        }
        cluster_map = cluster_sas_by_distance(sa_means, cluster_distance_threshold)

    clusters: list[ClusterProfile] = []
    sa_to_cluster: dict[int, int] = {}
    for index, (name, sas) in enumerate(sorted(cluster_map.items())):
        rows = np.concatenate([sa_groups[sa] for sa in sorted(sas)])
        points = data.vectors[rows]
        if points.shape[0] < min_cluster_size:
            raise TrainingError(
                f"cluster {name!r} has only {points.shape[0]} edge sets "
                f"(minimum {min_cluster_size})"
            )
        clusters.append(_fit_cluster(name, points, metric, shrinkage))
        for sa in sas:
            sa_to_cluster[sa] = index
    return VProfileModel(metric=metric, clusters=clusters, sa_to_cluster=sa_to_cluster)


def _fit_cluster(
    name: str, points: np.ndarray, metric: Metric, shrinkage: float
) -> ClusterProfile:
    """Fit the statistics of one cluster (GetMeans + CalcDistance max)."""
    mean = points.mean(axis=0)
    if metric is Metric.MAHALANOBIS:
        centered = points - mean
        covariance = centered.T @ centered / points.shape[0]
        inv_covariance = invert_covariance(covariance, shrinkage=shrinkage)
        distances = mahalanobis_distances(points, mean, inv_covariance)
    else:
        covariance = None
        inv_covariance = None
        distances = euclidean_distances(points, mean)
    return ClusterProfile(
        name=name,
        mean=mean,
        max_distance=float(distances.max()),
        count=int(points.shape[0]),
        covariance=covariance,
        inv_covariance=inv_covariance,
    )


def _group_by_sa(data: TrainingData) -> dict[int, np.ndarray]:
    """GroupBySA: SA -> row indices into ``data.vectors``."""
    groups: dict[int, list[int]] = defaultdict(list)
    for row, sa in enumerate(data.source_addresses):
        groups[int(sa)].append(row)
    return {sa: np.array(rows) for sa, rows in groups.items()}


def _cluster_by_lut(
    sa_groups: Mapping[int, np.ndarray], sa_clusters: Mapping[int, str]
) -> dict[str, list[int]]:
    """ClusterByLut: apply a supplied SA -> ECU database."""
    unknown = sorted(set(sa_groups) - set(sa_clusters))
    if unknown:
        listing = ", ".join(f"0x{sa:02X}" for sa in unknown)
        raise TrainingError(
            f"training data contains SAs absent from the lookup table: {listing}"
        )
    clusters: dict[str, list[int]] = defaultdict(list)
    for sa in sa_groups:
        clusters[sa_clusters[sa]].append(sa)
    return dict(clusters)


def cluster_sas_by_distance(
    sa_means: Mapping[int, np.ndarray], threshold: float | None = None
) -> dict[str, list[int]]:
    """ClusterByDist: merge SA groups whose means are close.

    Single-linkage agglomerative clustering over the Euclidean distances
    between per-SA mean edge sets.  With ``threshold=None`` the cut is
    placed at the largest relative gap in the sorted pairwise distances —
    intra-ECU SA distances are tiny (same transceiver) while inter-ECU
    distances are orders of magnitude larger, so the gap is unambiguous
    on real profiles.

    Returns
    -------
    dict mapping generated cluster names (``"cluster0"`` ...) to the SAs
    they contain, ordered by smallest SA.
    """
    sas = sorted(sa_means)
    if not sas:
        raise TrainingError("no SA groups to cluster")
    if len(sas) == 1:
        return {"cluster0": [sas[0]]}

    pairs: list[tuple[float, int, int]] = []
    for i, sa_a in enumerate(sas):
        for sa_b in sas[i + 1 :]:
            pairs.append(
                (euclidean_distance(sa_means[sa_a], sa_means[sa_b]), sa_a, sa_b)
            )
    pairs.sort()

    if threshold is None:
        threshold = _gap_threshold([d for d, _, _ in pairs])

    parent = {sa: sa for sa in sas}

    def find(sa: int) -> int:
        while parent[sa] != sa:
            parent[sa] = parent[parent[sa]]
            sa = parent[sa]
        return sa

    for distance, sa_a, sa_b in pairs:
        if distance < threshold:
            parent[find(sa_a)] = find(sa_b)

    roots: dict[int, list[int]] = defaultdict(list)
    for sa in sas:
        roots[find(sa)].append(sa)
    ordered = sorted(roots.values(), key=lambda group: group[0])
    return {f"cluster{i}": group for i, group in enumerate(ordered)}


def _gap_threshold(sorted_distances: Sequence[float]) -> float:
    """Place the merge threshold in the largest relative gap.

    Falls back to "merge nothing" when every distance is comparable
    (no multi-SA ECUs present).
    """
    positive = [d for d in sorted_distances if d > 0]
    if not positive:
        return float("inf")  # all identical: one cluster
    best_ratio = 1.0
    best_cut = None
    for lo, hi in zip(positive, positive[1:]):
        ratio = hi / lo
        if ratio > best_ratio:
            best_ratio = ratio
            best_cut = float(np.sqrt(lo * hi))
    if best_cut is None or best_ratio < 3.0:
        # No convincing gap: treat every SA as its own ECU.
        return 0.0
    return best_cut


def train_from_grouped(
    data: TrainingData,
    *,
    metric: Metric | str = Metric.MAHALANOBIS,
    cluster_distance_threshold: float | None = None,
    shrinkage: float = 0.0,
) -> VProfileModel:
    """Train without a LUT: the unfortunate branch of Algorithm 2.

    Groups by SA, computes SA means, clusters them by distance, then fits
    the model.  Equivalent to ``train_model(..., sa_clusters=None)`` and
    kept as an explicit entry point mirroring the paper's pseudocode.
    """
    return train_model(
        data,
        metric=metric,
        sa_clusters=None,
        cluster_distance_threshold=cluster_distance_threshold,
        shrinkage=shrinkage,
    )
