"""End-to-end vProfile pipeline: traces in, verdicts out.

Glues the three operational stages of Section 3.2 together for users who
want a ready-made IDS component:

* **Preprocessing** — edge-set extraction from raw voltage traces;
* **Training** — fitting the cluster model from a training capture;
* **Detection** — classifying live traces, optionally feeding verified
  legitimate messages back into the model via the Algorithm 4 online
  updater.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.acquisition.trace import VoltageTrace
from repro.core.detection import DetectionResult, Detector, Verdict
from repro.core.edge_extraction import (
    ExtractionConfig,
    extract_edge_set,
    extract_many,
)
from repro.core.model import Metric, VProfileModel
from repro.core.online_update import OnlineUpdater
from repro.core.training import TrainingData, train_model
from repro.errors import DetectionError


@dataclass
class PipelineConfig:
    """Configuration of a :class:`VProfilePipeline`.

    Attributes
    ----------
    metric:
        Distance metric for training and detection.
    margin:
        Detection margin added to the per-cluster thresholds.
    sa_clusters:
        Optional SA -> ECU lookup table (the "fortunate" training path).
    online_update:
        When True, messages classified OK are folded back into the model
        (Algorithm 4).  Requires the Mahalanobis metric.
    retrain_bound:
        Upper bound ``M`` on per-cluster counts for the online updater.
    shrinkage:
        Covariance shrinkage for training (0 matches the paper).
    """

    metric: Metric | str = Metric.MAHALANOBIS
    margin: float = 0.0
    sa_clusters: Mapping[int, str] | None = None
    online_update: bool = False
    retrain_bound: int | None = None
    shrinkage: float = 0.0


@dataclass
class PipelineStats:
    """Counters accumulated while the pipeline runs."""

    processed: int = 0
    anomalies: int = 0
    updated: int = 0
    reasons: dict[str, int] = field(default_factory=dict)


class VProfilePipeline:
    """A trainable, streaming sender-identification pipeline."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.extraction: ExtractionConfig | None = None
        self.model: VProfileModel | None = None
        self._detector: Detector | None = None
        self._updater: OnlineUpdater | None = None
        self.stats = PipelineStats()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        traces: Sequence[VoltageTrace],
        extraction: ExtractionConfig | None = None,
    ) -> VProfileModel:
        """Run preprocessing + Algorithm 2 over a training capture."""
        if not traces:
            raise DetectionError("cannot train on an empty capture")
        self.extraction = extraction or ExtractionConfig.for_trace(traces[0])
        edge_sets = extract_many(traces, self.extraction)
        self.model = train_model(
            TrainingData.from_edge_sets(edge_sets),
            metric=self.config.metric,
            sa_clusters=self.config.sa_clusters,
            shrinkage=self.config.shrinkage,
        )
        self._detector = Detector(self.model, margin=self.config.margin)
        self._updater = None
        if self.config.online_update:
            self._updater = OnlineUpdater(self.model, self.config.retrain_bound)
        return self.model

    def load_model(
        self, model: VProfileModel, extraction: ExtractionConfig
    ) -> None:
        """Adopt a pre-trained model instead of training."""
        self.model = model
        self.extraction = extraction
        self._detector = Detector(model, margin=self.config.margin)
        self._updater = (
            OnlineUpdater(model, self.config.retrain_bound)
            if self.config.online_update
            else None
        )

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._detector is not None

    def process(self, trace: VoltageTrace) -> DetectionResult:
        """Classify one trace, updating counters (and the model if
        online updates are enabled)."""
        if self._detector is None or self.extraction is None:
            raise DetectionError("pipeline is not trained")
        edge_set = extract_edge_set(trace, self.extraction)
        result = self._detector.classify(edge_set)
        self.stats.processed += 1
        if result.is_anomaly:
            self.stats.anomalies += 1
            reason = result.reason.value if result.reason else "unknown"
            self.stats.reasons[reason] = self.stats.reasons.get(reason, 0) + 1
        elif self._updater is not None:
            report = self._updater.update([edge_set])
            self.stats.updated += sum(report.updated.values())
        return result

    def process_stream(
        self, traces: Iterable[VoltageTrace]
    ) -> Iterable[DetectionResult]:
        """Lazily classify a stream of traces."""
        for trace in traces:
            yield self.process(trace)

    def anomaly_rate(self) -> float:
        """Fraction of processed messages flagged anomalous."""
        if self.stats.processed == 0:
            return 0.0
        return self.stats.anomalies / self.stats.processed
