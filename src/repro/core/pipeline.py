"""End-to-end vProfile pipeline: traces in, verdicts out.

Glues the three operational stages of Section 3.2 together for users who
want a ready-made IDS component:

* **Preprocessing** — edge-set extraction from raw voltage traces;
* **Training** — fitting the cluster model from a training capture;
* **Detection** — classifying live traces, optionally feeding verified
  legitimate messages back into the model via the Algorithm 4 online
  updater.

Observability: when a metrics registry is enabled (:mod:`repro.obs`),
the pipeline exports message/anomaly/update counters and the per-stage
latency histograms recorded inside ``extract_edge_set`` /
``Detector.classify`` / ``OnlineUpdater.update``, and emits structured
events for training runs and anomalies.  With observability disabled
(the default) every handle is a stateless no-op singleton, so
:meth:`VProfilePipeline.process` pays one global read and an identity
check per message — nothing else.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.acquisition.trace import VoltageTrace
from repro.core.detection import DetectionResult, Detector, Verdict
from repro.core.edge_extraction import (
    ExtractionConfig,
    extract_edge_set,
    extract_many,
)
from repro.core.model import Metric, VProfileModel
from repro.core.online_update import OnlineUpdater
from repro.core.training import TrainingData, train_model
from repro.errors import DetectionError
from repro.obs import preregister_pipeline_metrics
from repro.obs.events import get_event_log
from repro.obs.health import HealthConfig, ProfileHealthMonitor
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import span


@dataclass
class PipelineConfig:
    """Configuration of a :class:`VProfilePipeline`.

    Attributes
    ----------
    metric:
        Distance metric for training and detection.
    margin:
        Detection margin added to the per-cluster thresholds.
    sa_clusters:
        Optional SA -> ECU lookup table (the "fortunate" training path).
    online_update:
        When True, messages classified OK are folded back into the model
        (Algorithm 4).  Requires the Mahalanobis metric.
    retrain_bound:
        Upper bound ``M`` on per-cluster counts for the online updater.
    shrinkage:
        Covariance shrinkage for training (0 matches the paper).
    jobs:
        Worker processes for training-time edge-set extraction (``None``
        keeps it serial).  Extraction is deterministic, so the trained
        model is identical for every value.
    """

    metric: Metric | str = Metric.MAHALANOBIS
    margin: float = 0.0
    sa_clusters: Mapping[int, str] | None = None
    online_update: bool = False
    retrain_bound: int | None = None
    shrinkage: float = 0.0
    jobs: int | None = None


@dataclass
class PipelineStats:
    """Counters accumulated while the pipeline runs.

    ``reasons`` is a :class:`collections.Counter`, so missing reasons
    read as 0 and it still quacks like the plain dict it used to be.
    """

    processed: int = 0
    anomalies: int = 0
    updated: int = 0
    reasons: Counter = field(default_factory=Counter)


class VProfilePipeline:
    """A trainable, streaming sender-identification pipeline."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.extraction: ExtractionConfig | None = None
        self.model: VProfileModel | None = None
        self._detector: Detector | None = None
        self._updater: OnlineUpdater | None = None
        self.stats = PipelineStats()
        self.health: ProfileHealthMonitor | None = None
        self._obs_registry: MetricsRegistry | None = None
        self._m_processed = None
        self._m_updated = None

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    def _bind_obs(self, registry: MetricsRegistry) -> None:
        """(Re)resolve metric handles against the active registry.

        Called whenever the active registry changes identity; on the
        null registry the handles are the shared no-op singletons, which
        is what makes the disabled path free.
        """
        self._obs_registry = registry
        preregister_pipeline_metrics(registry)
        self._m_processed = registry.counter(
            "vprofile_messages_total", help="Messages classified by the detector"
        )
        self._m_updated = registry.counter(
            "vprofile_online_updates_total",
            help="Edge sets folded into the model by Algorithm 4",
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        traces: Sequence[VoltageTrace],
        extraction: ExtractionConfig | None = None,
    ) -> VProfileModel:
        """Run preprocessing + Algorithm 2 over a training capture."""
        if not traces:
            raise DetectionError("cannot train on an empty capture")
        with span("pipeline.train") as sp:
            self.extraction = extraction or ExtractionConfig.for_trace(traces[0])
            if self.config.jobs is not None:
                from repro.perf.engine import extract_many_parallel

                edge_sets = extract_many_parallel(
                    traces, self.extraction, jobs=self.config.jobs
                )
            else:
                edge_sets = extract_many(traces, self.extraction)
            self.model = train_model(
                TrainingData.from_edge_sets(edge_sets),
                metric=self.config.metric,
                sa_clusters=self.config.sa_clusters,
                shrinkage=self.config.shrinkage,
            )
            self._detector = Detector(self.model, margin=self.config.margin)
            self._updater = None
            if self.config.online_update:
                self._updater = OnlineUpdater(self.model, self.config.retrain_bound)
        registry = get_registry()
        self._bind_obs(registry)
        registry.gauge(
            "vprofile_model_clusters", help="Clusters in the trained model"
        ).set(self.model.n_clusters)
        get_event_log().info(
            "pipeline.trained",
            traces=len(traces),
            clusters=self.model.n_clusters,
            metric=self.model.metric.value,
            wall_s=sp.wall_s,
            cpu_s=sp.cpu_s,
        )
        return self.model

    def load_model(
        self, model: VProfileModel, extraction: ExtractionConfig
    ) -> None:
        """Adopt a pre-trained model instead of training."""
        self.model = model
        self.extraction = extraction
        self._detector = Detector(model, margin=self.config.margin)
        self._updater = (
            OnlineUpdater(model, self.config.retrain_bound)
            if self.config.online_update
            else None
        )
        self._bind_obs(get_registry())

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._detector is not None

    @property
    def detector(self) -> Detector:
        """The trained detector (shared with the streaming runtime)."""
        if self._detector is None:
            raise DetectionError("pipeline is not trained")
        return self._detector

    @property
    def updater(self) -> OnlineUpdater | None:
        """The Algorithm 4 updater, when online updates are enabled."""
        return self._updater

    def enable_health(
        self, config: HealthConfig | None = None
    ) -> ProfileHealthMonitor:
        """Attach a profile-health monitor to the trained model.

        Pins the current cluster profiles as the drift baseline, routes
        Algorithm-4 accept/reject decisions into the monitor, and makes
        :meth:`process` record every verdict.  Call after :meth:`train`
        or :meth:`load_model` — the baseline is whatever the profiles
        look like *now*.
        """
        if self.model is None:
            raise DetectionError("pipeline is not trained")
        self.health = ProfileHealthMonitor(self.model, config)
        if self._updater is not None:
            self._updater.observer = self.health.record_update
        return self.health

    def process(self, trace: VoltageTrace) -> DetectionResult:
        """Classify one trace, updating counters (and the model if
        online updates are enabled)."""
        if self._detector is None or self.extraction is None:
            raise DetectionError("pipeline is not trained")
        registry = get_registry()
        if registry is not self._obs_registry:
            self._bind_obs(registry)
        edge_set = extract_edge_set(trace, self.extraction)
        result = self._detector.classify(edge_set)
        if self.health is not None:
            self.health.record_verdict(result.source_address, result.is_anomaly)
        stats = self.stats
        stats.processed += 1
        self._m_processed.inc()
        if result.is_anomaly:
            stats.anomalies += 1
            reason = result.reason.value if result.reason else "unknown"
            stats.reasons[reason] += 1
            registry.counter("vprofile_anomalies_total", reason=reason).inc()
            get_event_log().warning(
                "pipeline.anomaly",
                reason=reason,
                source_address=result.source_address,
                min_distance=result.min_distance,
                slack=result.slack,
            )
        elif self._updater is not None:
            report = self._updater.update([edge_set])
            folded = sum(report.updated.values())
            if folded:
                stats.updated += folded
                self._m_updated.inc(folded)
        return result

    def process_stream(
        self, traces: Iterable[VoltageTrace]
    ) -> Iterable[DetectionResult]:
        """Lazily classify a stream of traces."""
        for trace in traces:
            yield self.process(trace)

    def stream(self, source, config=None, *, resume=None):
        """Run the online streaming runtime against this pipeline.

        ``source`` is a :class:`repro.stream.ChunkSource`; ``config`` a
        :class:`repro.stream.StreamConfig`; ``resume`` an optional
        checkpoint (object or directory).  Classification happens on the
        runtime's sharded workers, but the profile store, the Algorithm 4
        updater and the pipeline counters are shared: online updates
        learned on the stream are immediately visible to
        :meth:`process` and vice versa.  Returns the run's
        :class:`repro.stream.StreamReport`.
        """
        from repro.stream.runtime import StreamRuntime

        return StreamRuntime(self, config).run(source, resume=resume)

    def anomaly_rate(self) -> float:
        """Fraction of processed messages flagged anomalous."""
        if self.stats.processed == 0:
            return 0.0
        return self.stats.anomalies / self.stats.processed
