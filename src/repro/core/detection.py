"""Intrusion detection — Algorithm 3 of the paper.

Given an edge set and its claimed source address:

1. unknown SA  -> anomaly (trivial case the paper's experiments skip);
2. the SA's *expected* cluster comes from the model LUT, the *predicted*
   cluster is the one with the minimum distance to the edge set;
   mismatch -> anomaly;
3. otherwise the minimum distance is compared against the predicted
   cluster's training maximum plus a configurable margin;
   exceeded -> anomaly.

For anomalies from trained ECUs, the predicted cluster names the attack
origin (Section 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.distances import euclidean_distances, mahalanobis_distances
from repro.core.edge_extraction import ExtractedEdgeSet
from repro.core.model import Metric, VProfileModel
from repro.errors import DetectionError
from repro.obs.spans import stage_timer


class Verdict(str, Enum):
    """Detection outcome."""

    OK = "ok"
    ANOMALY = "anomaly"


class AnomalyReason(str, Enum):
    """Why a message was flagged."""

    UNKNOWN_SA = "unknown-sa"
    CLUSTER_MISMATCH = "cluster-mismatch"
    DISTANCE_EXCEEDED = "distance-exceeded"


@dataclass(frozen=True)
class DetectionResult:
    """Full outcome of Algorithm 3 for one message.

    Attributes
    ----------
    verdict:
        OK or ANOMALY.
    reason:
        Why the message was flagged; ``None`` for OK verdicts.
    source_address:
        The claimed SA.
    expected_cluster / predicted_cluster:
        Cluster indices; ``None`` when unavailable (unknown SA).
    min_distance:
        Distance to the nearest cluster mean.
    slack:
        ``min_distance`` minus the predicted cluster's threshold; an
        anomaly by distance when this exceeds the margin.
    """

    verdict: Verdict
    reason: AnomalyReason | None
    source_address: int
    expected_cluster: int | None
    predicted_cluster: int | None
    min_distance: float | None
    slack: float | None

    @property
    def is_anomaly(self) -> bool:
        return self.verdict is Verdict.ANOMALY

    def origin_name(self, model: VProfileModel) -> str | None:
        """Name of the attack origin, when attributable (Section 3.2.3)."""
        if self.predicted_cluster is None:
            return None
        return model.clusters[self.predicted_cluster].name


class Detector:
    """Algorithm 3 with a fixed model and margin.

    Parameters
    ----------
    model:
        A trained :class:`VProfileModel`.
    margin:
        Additional slack added to each cluster's max-distance threshold
        to absorb deviation beyond the training data.  "Selecting an
        appropriate margin is critical to vProfile's success" (Section
        3.2.3); :mod:`repro.eval.margin` implements the paper's tuning.
    """

    def __init__(self, model: VProfileModel, margin: float = 0.0):
        if margin < 0:
            raise DetectionError("margin must be non-negative (paper Section 4.3)")
        self.model = model
        self.margin = float(margin)

    # ------------------------------------------------------------------
    # Single-message path (Algorithm 3 verbatim)
    # ------------------------------------------------------------------
    def classify(self, edge_set: ExtractedEdgeSet | np.ndarray, sa: int | None = None) -> DetectionResult:
        """Classify one message.

        ``edge_set`` may be an extraction result (which carries its own
        SA) or a raw vector with ``sa`` supplied explicitly.

        Observability: each call times into
        ``vprofile_stage_seconds{stage="classify"}`` when a metrics
        registry is enabled.
        """
        with stage_timer("classify"):
            return self._classify(edge_set, sa)

    def _classify(self, edge_set: ExtractedEdgeSet | np.ndarray, sa: int | None = None) -> DetectionResult:
        if isinstance(edge_set, ExtractedEdgeSet):
            vector = edge_set.vector
            sa = edge_set.source_address if sa is None else sa
        else:
            vector = np.asarray(edge_set, dtype=float)
            if sa is None:
                raise DetectionError("raw vectors need an explicit SA")

        expected = self.model.cluster_of_sa(sa)
        if expected is None:
            return DetectionResult(
                verdict=Verdict.ANOMALY,
                reason=AnomalyReason.UNKNOWN_SA,
                source_address=sa,
                expected_cluster=None,
                predicted_cluster=None,
                min_distance=None,
                slack=None,
            )
        distances = self._distances_to_clusters(vector[np.newaxis, :])[0]
        predicted = int(np.argmin(distances))
        min_distance = float(distances[predicted])
        slack = min_distance - float(self.model.clusters[predicted].max_distance)
        if predicted != expected:
            reason: AnomalyReason | None = AnomalyReason.CLUSTER_MISMATCH
        elif slack > self.margin:
            reason = AnomalyReason.DISTANCE_EXCEEDED
        else:
            reason = None
        return DetectionResult(
            verdict=Verdict.ANOMALY if reason else Verdict.OK,
            reason=reason,
            source_address=sa,
            expected_cluster=expected,
            predicted_cluster=predicted,
            min_distance=min_distance,
            slack=slack,
        )

    # ------------------------------------------------------------------
    # Batch path (vectorised; used by the evaluation harness)
    # ------------------------------------------------------------------
    def classify_batch(self, vectors: np.ndarray, sas: np.ndarray) -> "BatchDetection":
        """Classify many messages at once.

        Returns a :class:`BatchDetection` with per-message verdict
        ingredients, from which anomaly flags for *any* margin can be
        derived cheaply (the margin-tuning sweep relies on this).

        Observability: the whole batch is one observation in
        ``vprofile_stage_seconds{stage="classify"}`` (one span per
        call, not per message).
        """
        with stage_timer("classify"):
            return self._classify_batch(vectors, sas)

    def _classify_batch(self, vectors: np.ndarray, sas: np.ndarray) -> "BatchDetection":
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        sas = np.asarray(sas, dtype=np.int64)
        if vectors.shape[0] != sas.shape[0]:
            raise DetectionError("vectors and SAs disagree in length")
        distances = self._distances_to_clusters(vectors)
        predicted = np.argmin(distances, axis=1)
        min_distance = distances[np.arange(distances.shape[0]), predicted]
        thresholds = self.model.max_distances[predicted]
        expected = np.array(
            [self.model.sa_to_cluster.get(int(sa), -1) for sa in sas], dtype=np.int64
        )
        return BatchDetection(
            expected_cluster=expected,
            predicted_cluster=predicted.astype(np.int64),
            min_distance=min_distance,
            slack=min_distance - thresholds,
            margin=self.margin,
        )

    def _distances_to_clusters(self, vectors: np.ndarray) -> np.ndarray:
        """Distance matrix (n, k) from each vector to each cluster."""
        model = self.model
        n = vectors.shape[0]
        distances = np.empty((n, model.n_clusters))
        if model.metric is Metric.MAHALANOBIS:
            for index, cluster in enumerate(model.clusters):
                distances[:, index] = mahalanobis_distances(
                    vectors, cluster.mean, cluster.inv_covariance
                )
        else:
            for index, cluster in enumerate(model.clusters):
                distances[:, index] = euclidean_distances(vectors, cluster.mean)
        return distances


@dataclass(frozen=True)
class BatchDetection:
    """Vectorised detection ingredients for a batch of messages.

    ``anomalies()`` reproduces Algorithm 3's decision for an arbitrary
    margin without re-computing distances, which makes the paper's
    margin-tuning procedure (scan for the best accuracy / F-score) cheap.
    """

    expected_cluster: np.ndarray  # (n,), -1 for unknown SA
    predicted_cluster: np.ndarray  # (n,)
    min_distance: np.ndarray  # (n,)
    slack: np.ndarray  # (n,)
    margin: float

    def anomalies(self, margin: float | None = None) -> np.ndarray:
        """Boolean anomaly flags at ``margin`` (default: detector margin)."""
        if margin is None:
            margin = self.margin
        unknown = self.expected_cluster < 0
        mismatch = self.expected_cluster != self.predicted_cluster
        exceeded = self.slack > margin
        return unknown | mismatch | exceeded

    @property
    def hard_anomalies(self) -> np.ndarray:
        """Flags that no margin can suppress (unknown SA / mismatch)."""
        return (self.expected_cluster < 0) | (
            self.expected_cluster != self.predicted_cluster
        )
