"""vProfile core: the paper's primary contribution.

Edge-set extraction (Algorithm 1), model training (Algorithm 2),
detection (Algorithm 3), the online model update (Algorithm 4), and the
Euclidean / Mahalanobis distance machinery they share.
"""

from repro.core.detection import (
    AnomalyReason,
    BatchDetection,
    DetectionResult,
    Detector,
    Verdict,
)
from repro.core.distances import (
    RunningStats,
    euclidean_distance,
    euclidean_distances,
    invert_covariance,
    mahalanobis_distance,
    mahalanobis_distances,
)
from repro.core.edge_extraction import (
    FIRST_STABLE_BIT,
    SA_FIRST_BIT,
    SA_LAST_BIT,
    ExtractedEdgeSet,
    ExtractionConfig,
    FrameFormat,
    cluster_threshold,
    extract_edge_set,
    extract_many,
    get_bit_value,
)
from repro.core.model import ClusterProfile, Metric, VProfileModel
from repro.core.online_update import OnlineUpdater, UpdateReport
from repro.core.pipeline import PipelineConfig, PipelineStats, VProfilePipeline
from repro.core.training import (
    TrainingData,
    cluster_sas_by_distance,
    train_from_grouped,
    train_model,
)

__all__ = [
    "AnomalyReason",
    "BatchDetection",
    "DetectionResult",
    "Detector",
    "Verdict",
    "RunningStats",
    "euclidean_distance",
    "euclidean_distances",
    "invert_covariance",
    "mahalanobis_distance",
    "mahalanobis_distances",
    "FIRST_STABLE_BIT",
    "SA_FIRST_BIT",
    "SA_LAST_BIT",
    "ExtractedEdgeSet",
    "ExtractionConfig",
    "FrameFormat",
    "cluster_threshold",
    "extract_edge_set",
    "extract_many",
    "get_bit_value",
    "ClusterProfile",
    "Metric",
    "VProfileModel",
    "OnlineUpdater",
    "UpdateReport",
    "PipelineConfig",
    "PipelineStats",
    "VProfilePipeline",
    "TrainingData",
    "cluster_sas_by_distance",
    "train_from_grouped",
    "train_model",
]
