"""The vProfile model: what training produces and detection consumes.

Per Section 3.2.2 the model holds, for every cluster (= physical ECU):
its mean edge set, its maximum observed training distance (the detection
threshold), and a lookup table mapping valid source addresses to their
cluster.  With the Mahalanobis metric (Section 4.2.2) each cluster
additionally stores its covariance and inverse covariance, and Algorithm
4 (online update) needs the per-cluster edge-set count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import DetectionError, TrainingError


class Metric(str, Enum):
    """Distance metric selector (paper Section 2.2.2)."""

    EUCLIDEAN = "euclidean"
    MAHALANOBIS = "mahalanobis"


@dataclass
class ClusterProfile:
    """Trained statistics of one cluster / ECU.

    Attributes
    ----------
    name:
        Cluster label (the ECU name when a LUT was supplied, otherwise a
        generated ``cluster<N>`` label).
    mean:
        Mean edge set, shape (d,).
    covariance / inv_covariance:
        Cluster covariance and its inverse; ``None`` under the Euclidean
        metric.
    max_distance:
        Largest training-set distance from the mean — the per-cluster
        detection threshold of Algorithm 2.
    count:
        Number of training edge sets (``N_n`` in eq. 5.1).
    """

    name: str
    mean: np.ndarray
    max_distance: float
    count: int
    covariance: np.ndarray | None = None
    inv_covariance: np.ndarray | None = None


@dataclass
class VProfileModel:
    """A complete trained vProfile model.

    Attributes
    ----------
    metric:
        Which distance the model was trained with.
    clusters:
        Per-cluster statistics, indexed by cluster id.
    sa_to_cluster:
        The cluster-SA lookup table: valid SA -> cluster index.
    """

    metric: Metric
    clusters: list[ClusterProfile]
    sa_to_cluster: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.clusters:
            raise TrainingError("a model needs at least one cluster")
        k = len(self.clusters)
        for sa, cluster in self.sa_to_cluster.items():
            if not 0 <= cluster < k:
                raise TrainingError(
                    f"SA 0x{sa:02X} maps to cluster {cluster}, but the model "
                    f"has {k} clusters"
                )
        dims = {c.mean.shape for c in self.clusters}
        if len(dims) != 1:
            raise TrainingError(f"inconsistent edge-set dimensions: {dims}")
        if self.metric is Metric.MAHALANOBIS:
            missing = [c.name for c in self.clusters if c.inv_covariance is None]
            if missing:
                raise TrainingError(
                    f"Mahalanobis model lacks inverse covariances for {missing}"
                )

    @property
    def dim(self) -> int:
        """Edge-set dimensionality."""
        return int(self.clusters[0].mean.shape[0])

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def known_sas(self) -> set[int]:
        """All source addresses the model considers legitimate."""
        return set(self.sa_to_cluster)

    def cluster_of_sa(self, sa: int) -> int | None:
        """The expected cluster for a claimed SA, or None if unknown."""
        return self.sa_to_cluster.get(sa)

    def cluster_named(self, name: str) -> ClusterProfile:
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise DetectionError(f"no cluster named {name!r}")

    @property
    def means(self) -> np.ndarray:
        """Stacked cluster means, shape (k, d)."""
        return np.stack([c.mean for c in self.clusters])

    @property
    def max_distances(self) -> np.ndarray:
        """Per-cluster thresholds, shape (k,)."""
        return np.array([c.max_distance for c in self.clusters])

    @property
    def inv_covariances(self) -> np.ndarray:
        """Stacked inverse covariances, shape (k, d, d)."""
        if self.metric is not Metric.MAHALANOBIS:
            raise DetectionError("Euclidean models have no covariances")
        return np.stack([c.inv_covariance for c in self.clusters])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path | IO[bytes]") -> None:
        """Serialise to an ``.npz`` archive (path or binary file object).

        Accepting file objects lets callers move models over sockets
        (the fleet gateway registers tenants from uploaded bytes)
        without a temporary file.
        """
        if not hasattr(path, "write"):
            path = Path(path)
        arrays: dict[str, np.ndarray] = {
            "metric": np.array(self.metric.value),
            "names": np.array([c.name for c in self.clusters]),
            "means": self.means,
            "max_distances": self.max_distances,
            "counts": np.array([c.count for c in self.clusters]),
            "sa_keys": np.array(sorted(self.sa_to_cluster), dtype=np.int64),
            "sa_values": np.array(
                [self.sa_to_cluster[sa] for sa in sorted(self.sa_to_cluster)],
                dtype=np.int64,
            ),
        }
        if self.metric is Metric.MAHALANOBIS:
            arrays["covariances"] = np.stack([c.covariance for c in self.clusters])
            arrays["inv_covariances"] = self.inv_covariances
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: "str | Path | IO[bytes]") -> "VProfileModel":
        """Load a model previously stored with :meth:`save`."""
        source = path if hasattr(path, "read") else Path(path)
        with np.load(source, allow_pickle=False) as archive:
            metric = Metric(str(archive["metric"]))
            names = [str(n) for n in archive["names"]]
            means = archive["means"]
            max_distances = archive["max_distances"]
            counts = archive["counts"]
            covs = archive["covariances"] if "covariances" in archive else None
            inv_covs = archive["inv_covariances"] if "inv_covariances" in archive else None
            sa_map = {
                int(k): int(v)
                for k, v in zip(archive["sa_keys"], archive["sa_values"])
            }
        clusters = [
            ClusterProfile(
                name=names[i],
                mean=means[i],
                max_distance=float(max_distances[i]),
                count=int(counts[i]),
                covariance=None if covs is None else covs[i],
                inv_covariance=None if inv_covs is None else inv_covs[i],
            )
            for i in range(len(names))
        ]
        return cls(metric=metric, clusters=clusters, sa_to_cluster=sa_map)
