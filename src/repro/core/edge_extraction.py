"""Edge-set extraction — Algorithm 1 of the paper.

Walks the sampled voltage of one CAN message, staying bit-synchronised by
re-centering on every observed edge, skips stuff bits, decodes the J1939
source address from logical bits 24-31, and — once past the arbitration
field (bit 33) — extracts the first *edge set*: a fixed number of samples
around the next falling and rising threshold crossings.

Naming note: the thesis prose says "iterate until the first rising edge
... then find the falling edge", but its pseudocode (and the fact that
bit 33, the r1 reserved bit, is always dominant) means the first crossing
encountered is the *falling* one.  We follow the pseudocode: the edge set
is [falling-edge window, rising-edge window].  The ordering is irrelevant
to the classifier as long as it is consistent.

Two Chapter 5 enhancements live here as options:

* per-cluster extraction thresholds (Section 5.1), computed as the mean
  of the max and min of the first half of a message;
* multi-edge-set averaging (Section 5.2): extract several edge sets
  spaced a fixed number of samples apart and use their mean.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from enum import Enum

from repro.acquisition.adc import AdcConfig
from repro.acquisition.trace import VoltageTrace
from repro.errors import ExtractionError
from repro.obs.spans import stage_timer

#: Environment variable selecting the bit-walker implementation:
#: ``vector`` (default, numpy edge-index walker) or ``scalar`` (the
#: original per-sample reference oracle).  Both produce byte-identical
#: edge sets — the switch exists so the scalar walker stays available as
#: the equivalence oracle for property tests and for debugging.
EXTRACT_IMPL_ENV_VAR = "REPRO_EXTRACT_IMPL"

#: Valid values for :data:`EXTRACT_IMPL_ENV_VAR` / the ``impl`` argument.
EXTRACT_IMPLS = ("vector", "scalar")


def resolve_extract_impl(impl: str | None = None) -> str:
    """Effective walker implementation: explicit arg, else env, else vector."""
    if impl is None:
        impl = os.environ.get(EXTRACT_IMPL_ENV_VAR) or "vector"
    impl = impl.strip().lower()
    if impl not in EXTRACT_IMPLS:
        raise ExtractionError(
            f"unknown extraction impl {impl!r}; expected one of {EXTRACT_IMPLS}"
        )
    return impl

#: Logical bit positions in an extended frame (SOF = bit 0, stuff bits
#: excluded): the J1939 SA occupies bits 24-31 and bit 33 is the first
#: bit after the arbitration field (paper Section 3.2.1).
SA_FIRST_BIT = 24
SA_LAST_BIT = 31
FIRST_STABLE_BIT = 33

#: The same landmarks for standard (CAN 2.0A) frames — the paper's
#: Section 6.1 future-work adaptation.  The whole 11-bit identifier is
#: the sender identity (bits 1-11); the arbitration field ends with the
#: RTR bit at position 12, so bit 13 (IDE) is the first stable bit.
STD_ID_FIRST_BIT = 1
STD_ID_LAST_BIT = 11
STD_FIRST_STABLE_BIT = 13


class FrameFormat(str, Enum):
    """Which CAN frame layout the extractor walks."""

    EXTENDED = "extended"   # CAN 2.0B / J1939 (the paper's vehicles)
    STANDARD = "standard"   # CAN 2.0A (Section 6.1 future work)

    @property
    def id_first_bit(self) -> int:
        return SA_FIRST_BIT if self is FrameFormat.EXTENDED else STD_ID_FIRST_BIT

    @property
    def id_last_bit(self) -> int:
        return SA_LAST_BIT if self is FrameFormat.EXTENDED else STD_ID_LAST_BIT

    @property
    def first_stable_bit(self) -> int:
        return (
            FIRST_STABLE_BIT
            if self is FrameFormat.EXTENDED
            else STD_FIRST_STABLE_BIT
        )

#: Paper constants for a 10 MS/s capture of a 250 kb/s bus.
REFERENCE_PREFIX_S = 0.2e-6   # 2 samples at 10 MS/s
REFERENCE_SUFFIX_S = 1.4e-6   # 14 samples at 10 MS/s
REFERENCE_EDGE_SET_SPACING_S = 25e-6  # 250 samples at 10 MS/s
#: The extraction threshold should horizontally bisect an edge; half the
#: nominal 2 V dominant differential.
REFERENCE_THRESHOLD_V = 1.0


@dataclass(frozen=True)
class ExtractionConfig:
    """Constants of Algorithm 1 (paper Section 3.2.1).

    Attributes
    ----------
    bit_width:
        Samples per bus bit (40 at 10 MS/s on a 250 kb/s bus).
    threshold:
        ADC-count value bisecting the rising edge ("38,000 is a good
        starting point" for 16-bit captures).
    prefix_len / suffix_len:
        Samples kept before / after each threshold crossing.
    n_edge_sets:
        How many edge sets to extract and average (Section 5.2; 1 in the
        base algorithm).
    edge_set_spacing:
        Sample distance between the starting points of consecutive edge
        sets when ``n_edge_sets > 1``.
    frame_format:
        Extended (J1939, the paper's vehicles) or standard frames
        (Section 6.1 future work).  Selects the identity-field bit
        positions and the first stable bit.
    """

    bit_width: float
    threshold: float
    prefix_len: int = 2
    suffix_len: int = 14
    n_edge_sets: int = 1
    edge_set_spacing: int = 250
    frame_format: FrameFormat = FrameFormat.EXTENDED

    def __post_init__(self) -> None:
        if self.bit_width < 4:
            raise ExtractionError(
                f"bit width {self.bit_width} too small to synchronise on"
            )
        if self.prefix_len < 0 or self.suffix_len < 1:
            raise ExtractionError("prefix must be >= 0 and suffix >= 1")
        if self.n_edge_sets < 1:
            raise ExtractionError("n_edge_sets must be at least 1")
        if self.n_edge_sets > 1 and self.edge_set_spacing < 1:
            raise ExtractionError("edge_set_spacing must be positive")

    @property
    def edge_set_length(self) -> int:
        """Dimensionality of one extracted edge set (two edge windows)."""
        return 2 * (self.prefix_len + self.suffix_len)

    @classmethod
    def for_trace(
        cls,
        trace: VoltageTrace,
        *,
        threshold: float | None = None,
        n_edge_sets: int = 1,
        frame_format: FrameFormat = FrameFormat.EXTENDED,
    ) -> "ExtractionConfig":
        """Derive constants for a trace's rate / resolution.

        Scales the paper's 10 MS/s reference constants (prefix 2, suffix
        14, 250-sample spacing) with the actual sample rate, and places
        the threshold at 1 V on the trace's ADC code axis.
        """
        fs = trace.sample_rate
        if threshold is None:
            adc = AdcConfig(resolution_bits=trace.resolution_bits)
            threshold = adc.volts_to_counts(REFERENCE_THRESHOLD_V)
        prefix = max(1, round(REFERENCE_PREFIX_S * fs))
        suffix = max(2, round(REFERENCE_SUFFIX_S * fs))
        spacing = max(1, round(REFERENCE_EDGE_SET_SPACING_S * fs))
        return cls(
            bit_width=trace.samples_per_bit,
            threshold=float(threshold),
            prefix_len=prefix,
            suffix_len=suffix,
            n_edge_sets=n_edge_sets,
            edge_set_spacing=spacing,
            frame_format=frame_format,
        )

    def with_threshold(self, threshold: float) -> "ExtractionConfig":
        """Copy with a different edge threshold (Section 5.1)."""
        return replace(self, threshold=float(threshold))


@dataclass(frozen=True)
class ExtractedEdgeSet:
    """Result of Algorithm 1 for one message.

    Attributes
    ----------
    source_address:
        J1939 SA decoded from logical bits 24-31.
    vector:
        The edge-set feature vector (mean of ``n_edge_sets`` windows).
    metadata:
        Ground-truth annotations copied from the trace.
    """

    source_address: int
    vector: np.ndarray
    metadata: dict[str, Any]

    @property
    def identity(self) -> int:
        """Generic sender-identity key.

        Equals the J1939 SA for extended frames and the 11-bit CAN
        identifier for standard frames (Section 6.1 adaptation).
        """
        return self.source_address


def get_bit_value(sample: float, threshold: float) -> int:
    """GetBitValue from Algorithm 1: dominant (high voltage) decodes as 0."""
    return 0 if sample >= threshold else 1


def extract_edge_set(
    trace: VoltageTrace,
    config: ExtractionConfig,
    *,
    impl: str | None = None,
) -> ExtractedEdgeSet:
    """Run Algorithm 1 on one trace.

    Observability: times into ``vprofile_stage_seconds{stage="extract"}``
    when a metrics registry is enabled (no-op otherwise).

    ``impl`` selects the bit-walker (``vector``/``scalar``, both
    byte-identical); ``None`` defers to ``REPRO_EXTRACT_IMPL``.

    Raises
    ------
    ExtractionError
        If the trace is too short, no SOF is found, or a stuff violation
        is encountered.
    """
    with stage_timer("extract"):
        if resolve_extract_impl(impl) == "scalar":
            return _extract_edge_set(trace, config)
        return _extract_edge_set_vector(trace, config)


def _extract_edge_set(trace: VoltageTrace, config: ExtractionConfig) -> ExtractedEdgeSet:
    samples = np.asarray(trace.counts, dtype=float)
    # The bit walker touches samples one at a time; plain-float list
    # indexing is several times cheaper than NumPy scalar indexing, and
    # tolist() yields the exact same float64 values.
    values = samples.tolist()
    n_values = len(values)
    threshold = config.threshold
    bit_width = config.bit_width
    half_bit = bit_width / 2.0
    id_last_bit = config.frame_format.id_last_bit
    first_stable_bit = config.frame_format.first_stable_bit

    sof = _find_sof(samples, threshold)
    pos = sof + half_bit
    bit_values: list[int] = [_value_at(values, pos, threshold)]
    if bit_values[0] != 0:
        raise ExtractionError("sample at SOF centre is not dominant")

    prev_bit = 0
    run_length = 1
    bit_count = 0  # counts logical bits appended after SOF
    source_address: int | None = None
    extraction_start: float | None = None

    while pos + bit_width < n_values:
        pos += bit_width
        # Inline _value_at: this loop runs once per wire bit and
        # dominates extraction time.
        index = int(round(pos))
        if index >= n_values:
            raise ExtractionError(f"bit walk ran off the trace at sample {index}")
        bit = 0 if values[index] >= threshold else 1
        is_stuff = False
        if bit != prev_bit:
            # Re-centre on the observed edge to hold synchronisation.
            crossing = _align_to_edge_center(values, pos, threshold, bit_width)
            pos = crossing + half_bit
            if run_length == 5:
                # After five identical bits the opposite-polarity bit is
                # a stuff bit: consume it but keep it out of the logical
                # stream.  It still seeds the next run (ISO 11898-1).
                is_stuff = True
            run_length = 1
            prev_bit = bit
        else:
            run_length += 1
            if run_length == 6:
                raise ExtractionError(
                    f"stuff violation near sample {int(pos)}: six identical bits"
                )
        if is_stuff:
            continue
        bit_values.append(bit)
        bit_count += 1
        if bit_count == id_last_bit:
            source_address = _decode_identity(bit_values, config.frame_format)
        elif bit_count == first_stable_bit:
            extraction_start = pos
            break

    if source_address is None or extraction_start is None:
        raise ExtractionError(
            f"trace ended after {bit_count} logical bits; need "
            f"{config.frame_format.first_stable_bit} plus an edge set"
        )

    windows = []
    start = extraction_start
    for k in range(config.n_edge_sets):
        windows.append(_extract_window_pair(samples, values, start, config))
        start = extraction_start + (k + 1) * config.edge_set_spacing
    vector = np.mean(windows, axis=0) if len(windows) > 1 else windows[0]

    return ExtractedEdgeSet(
        source_address=source_address,
        vector=np.asarray(vector, dtype=float),
        metadata=dict(trace.metadata),
    )


def _extract_edge_set_vector(
    trace: VoltageTrace, config: ExtractionConfig
) -> ExtractedEdgeSet:
    """Edge-index walker: byte-identical to :func:`_extract_edge_set`.

    The scalar walker touches the trace one sample at a time — a
    per-sample backward scan at every observed edge and three per-sample
    forward scans per edge window.  This implementation thresholds the
    whole trace once, locates every polarity change with one
    ``flatnonzero`` pass, and replaces all sample scans with O(log E)
    lookups into that edge index array.  The bit walk itself (run
    lengths, stuff-bit bookkeeping, SA decoding) is unchanged: each bit
    centre samples the same thresholded value the scalar walker would,
    and re-centering lands on the same crossing (the start of the
    polarity run containing the sampled index, clamped to the scalar
    scan's ``floor`` guard).
    """
    samples = np.asarray(trace.counts, dtype=float)
    n_values = samples.size
    threshold = config.threshold
    bit_width = config.bit_width
    half_bit = bit_width / 2.0
    id_last_bit = config.frame_format.id_last_bit
    first_stable_bit = config.frame_format.first_stable_bit

    above_arr = samples >= threshold
    if not above_arr.any():
        raise ExtractionError("no start-of-frame found (trace never dominant)")
    sof = int(above_arr.argmax())
    # bytes indexing returns small ints at ~list speed without the O(n)
    # float boxing of tolist(); edges[k] is the first sample of the k-th
    # polarity run (exactly where the scalar backward scan stops).
    above = above_arr.tobytes()
    edges = (np.flatnonzero(above_arr[:-1] != above_arr[1:]) + 1).tolist()

    pos = sof + half_bit
    index = int(round(pos))
    if index < 0 or index >= n_values:
        raise ExtractionError(f"bit walk ran off the trace at sample {index}")
    bit_values: list[int] = [0 if above[index] else 1]
    if bit_values[0] != 0:
        raise ExtractionError("sample at SOF centre is not dominant")

    prev_bit = 0
    run_length = 1
    bit_count = 0
    source_address: int | None = None
    extraction_start: float | None = None

    while pos + bit_width < n_values:
        pos += bit_width
        index = int(round(pos))
        if index >= n_values:
            raise ExtractionError(f"bit walk ran off the trace at sample {index}")
        bit = 0 if above[index] else 1
        is_stuff = False
        if bit != prev_bit:
            # Re-centre on the observed edge: the start of the polarity
            # run containing `index`, clamped to the scalar scan's floor.
            floor = max(0, int(round(pos - bit_width)))
            k = bisect_right(edges, index)
            run_start = edges[k - 1] if k else 0
            pos = float(max(run_start, floor)) + half_bit
            if run_length == 5:
                is_stuff = True
            run_length = 1
            prev_bit = bit
        else:
            run_length += 1
            if run_length == 6:
                raise ExtractionError(
                    f"stuff violation near sample {int(pos)}: six identical bits"
                )
        if is_stuff:
            continue
        bit_values.append(bit)
        bit_count += 1
        if bit_count == id_last_bit:
            source_address = _decode_identity(bit_values, config.frame_format)
        elif bit_count == first_stable_bit:
            extraction_start = pos
            break

    if source_address is None or extraction_start is None:
        raise ExtractionError(
            f"trace ended after {bit_count} logical bits; need "
            f"{config.frame_format.first_stable_bit} plus an edge set"
        )

    windows = []
    start = extraction_start
    for k in range(config.n_edge_sets):
        windows.append(
            _extract_window_pair_vector(samples, above, edges, start, config)
        )
        start = extraction_start + (k + 1) * config.edge_set_spacing
    vector = np.mean(windows, axis=0) if len(windows) > 1 else windows[0]

    return ExtractedEdgeSet(
        source_address=source_address,
        vector=np.asarray(vector, dtype=float),
        metadata=dict(trace.metadata),
    )


#: Target padded working-set size (samples + run tables) of one columnar
#: extraction block; the row count per block is derived from the longest
#: trace so short traces amortise per-op numpy dispatch over more rows.
_COLUMNAR_BLOCK_BUDGET = 8_000_000  # elements, ~64 MB of float64
_COLUMNAR_BLOCK_MIN = 256
_COLUMNAR_BLOCK_MAX = 4096

# Error codes carried per-row through the columnar walker; formatted into
# the exact scalar-walker message strings by _format_columnar_error.
_ERR_NO_SOF = 1
_ERR_SOF_NOT_DOMINANT = 2
_ERR_RAN_OFF = 3
_ERR_STUFF = 4
_ERR_ENDED = 5
_ERR_EDGE_SEARCH = 6
_ERR_WINDOW = 7


def extract_edge_sets_batch(
    traces: Sequence[VoltageTrace], config: ExtractionConfig
) -> list[ExtractedEdgeSet | ExtractionError]:
    """Columnar Algorithm 1: walk every trace of a batch in lockstep.

    Returns one outcome per input trace, in order: the extracted edge set,
    or the exact :class:`ExtractionError` the scalar walker would have
    raised for that trace.  All traces advance one wire bit per loop
    iteration as numpy row vectors (position, run length, bit count,
    decoded identity), so the Python-level loop runs ~45 times per *batch*
    instead of ~45 times per *message*.  Rows that finish or fail are
    frozen by masks; outputs are byte-identical to the scalar walker.
    """
    if not traces:
        return []
    longest = max(np.asarray(t.counts).size for t in traces)
    block_rows = max(
        _COLUMNAR_BLOCK_MIN,
        min(_COLUMNAR_BLOCK_MAX, _COLUMNAR_BLOCK_BUDGET // max(1, longest)),
    )
    out: list[ExtractedEdgeSet | ExtractionError] = []
    for lo in range(0, len(traces), block_rows):
        block = list(traces[lo : lo + block_rows])
        with stage_timer("extract"):
            out.extend(_extract_columnar_block(block, config))
    return out


def _extract_columnar_block(
    traces: list[VoltageTrace], config: ExtractionConfig
) -> list[ExtractedEdgeSet | ExtractionError]:
    n_rows = len(traces)
    counts = [np.asarray(t.counts) for t in traces]
    lengths = np.array([c.size for c in counts], dtype=np.int64)
    s_max = int(lengths.max()) if n_rows else 0
    first_stable = config.frame_format.first_stable_bit
    if s_max == 0:
        return [
            ExtractionError("no start-of-frame found (trace never dominant)")
            for _ in traces
        ]

    # Padding is -inf: it thresholds to recessive for any finite
    # threshold, so no separate validity mask is needed, and the padding
    # boundary of a dominant-ending trace shows up as a polarity change —
    # the window scans fail there exactly like the scalar walker's
    # off-the-end checks, because positions >= length always fail.
    if int(lengths.min()) == s_max:
        # Equal-length block (the engine's common case): no padding to
        # write, so one stacked conversion replaces the per-row fills.
        samples = np.stack(counts).astype(np.float64)
    else:
        samples = np.full((n_rows, s_max), -np.inf)
        for g, row in enumerate(counts):
            samples[g, : row.size] = row

    threshold = config.threshold
    bit_width = config.bit_width
    half_bit = bit_width / 2.0
    id_first = config.frame_format.id_first_bit
    id_last = config.frame_format.id_last_bit

    cols = np.arange(s_max, dtype=np.int32)
    above = samples >= threshold
    # change[g, i]: a polarity run starts at sample i (i >= 1).
    change = np.zeros((n_rows, s_max), dtype=bool)
    if s_max > 1:
        change[:, 1:] = above[:, 1:] != above[:, :-1]
    # run_start[g, i]: first sample of the polarity run containing i —
    # exactly where the scalar backward scan stops (before its floor clamp).
    run_start = np.where(change, cols[None, :], np.int32(0))
    np.maximum.accumulate(run_start, axis=1, out=run_start)
    # next_change[g, i]: smallest change index >= i, or `big`.  Replaces
    # the scalar forward sample scans: polarity runs alternate, so the
    # first change after a wrong-polarity position starts the wanted
    # run.  The suffix-min runs over a contiguous reversed copy —
    # accumulating through a negative-stride view hits the slow path.
    big = s_max + 1
    rev = np.flip(np.where(change, cols[None, :], np.int32(big)), axis=1).copy()
    np.minimum.accumulate(rev, axis=1, out=rev)
    next_change = np.flip(rev, axis=1).copy()

    rows = np.arange(n_rows)
    flat_base = rows.astype(np.int64) * s_max
    above_flat = above.reshape(-1)
    run_start_flat = run_start.reshape(-1)
    err = np.zeros(n_rows, dtype=np.int8)
    e1 = np.zeros(n_rows, dtype=np.int64)
    e2 = np.zeros(n_rows, dtype=np.int64)

    # --- SOF ---------------------------------------------------------
    sof = above.argmax(axis=1)
    has_sof = above_flat.take(flat_base + sof)
    err[~has_sof] = _ERR_NO_SOF
    pos = sof.astype(np.float64) + half_bit
    index = np.rint(pos).astype(np.int64)
    oob = has_sof & ((index < 0) | (index >= lengths))
    err[oob] = _ERR_RAN_OFF
    e1[oob] = index[oob]
    ok = has_sof & ~oob
    idx_safe = np.minimum(index, s_max - 1)
    np.maximum(idx_safe, 0, out=idx_safe)
    recessive_sof = ok & ~above_flat.take(flat_base + idx_safe)
    err[recessive_sof] = _ERR_SOF_NOT_DOMINANT
    active = ok & ~recessive_sof

    # --- bit walk ----------------------------------------------------
    # prev_bit is the *thresholded polarity* (True = recessive), matching
    # the scalar walker's 0/1 bits through the invert in `bit`.
    prev_bit = np.zeros(n_rows, dtype=bool)
    run_length = np.ones(n_rows, dtype=np.int64)
    bit_count = np.zeros(n_rows, dtype=np.int64)
    identity = np.zeros(n_rows, dtype=np.int64)
    ext_start = np.zeros(n_rows, dtype=np.float64)
    done = np.zeros(n_rows, dtype=bool)

    while True:
        advanced = pos + bit_width
        ended = active & ~(advanced < lengths)
        if ended.any():
            err[ended] = _ERR_ENDED
            e1[ended] = bit_count[ended]
            active &= ~ended
        if not active.any():
            break
        pos = np.where(active, advanced, pos)
        index = np.rint(pos).astype(np.int64)
        ran_off = active & (index >= lengths)
        if ran_off.any():
            err[ran_off] = _ERR_RAN_OFF
            e1[ran_off] = index[ran_off]
            active &= ~ran_off
        np.minimum(index, s_max - 1, out=index)
        flat = flat_base + index
        # bit: True = recessive (decodes as 1), False = dominant.
        bit = ~above_flat.take(flat)
        changed = active & (bit != prev_bit)

        # Changed rows re-centre: run start clamped to the scalar floor.
        if changed.any():
            floor = np.rint(pos - bit_width).astype(np.int64)
            np.maximum(floor, 0, out=floor)
            crossing = np.maximum(run_start_flat.take(flat), floor)
            pos = np.where(changed, crossing + half_bit, pos)
        is_stuff = changed & (run_length == 5)
        same = active ^ changed          # changed is a subset of active
        run_length += same               # bool adds 1 where polarity held
        run_length[changed] = 1
        # Inactive rows are never read again, so a global rebind is safe
        # and active-same rows already satisfy prev_bit == bit.
        prev_bit = bit
        violation = same & (run_length == 6)
        if violation.any():
            err[violation] = _ERR_STUFF
            e1[violation] = pos[violation].astype(np.int64)
            active &= ~violation

        append = active & ~is_stuff
        bit_count += append
        in_id = append & (bit_count >= id_first) & (bit_count <= id_last)
        if in_id.any():
            identity[in_id] = identity[in_id] * 2 + bit[in_id]
        finished = append & (bit_count == first_stable)
        if finished.any():
            ext_start[finished] = pos[finished]
            done |= finished
            active &= ~finished

    # --- edge windows ------------------------------------------------
    samples_flat = samples.reshape(-1)
    next_change_flat = next_change.reshape(-1)

    def _advance(p: np.ndarray, want_above: bool) -> tuple[np.ndarray, np.ndarray]:
        """First index >= p of the wanted polarity, per row (or `big`).

        If ``p`` already matches it is returned unchanged; otherwise the
        run containing ``p`` has the wrong polarity, and because runs
        alternate the first change strictly after ``p`` starts the
        wanted run.  Any answer at or past the row's real length fails —
        the scalar scans would have run off the trace there.
        """
        p_safe = np.minimum(p, s_max - 1)
        np.maximum(p_safe, 0, out=p_safe)
        direct = (p < lengths) & (above_flat.take(flat_base + p_safe) == want_above)
        after = np.minimum(p + 1, s_max - 1)
        np.maximum(after, 0, out=after)
        nxt = np.where(p + 1 < s_max, next_change_flat.take(flat_base + after), big)
        new_p = np.where(direct, p, nxt)
        return new_p, new_p >= lengths

    prefix, suffix = config.prefix_len, config.suffix_len
    window_offsets = np.arange(-prefix, suffix, dtype=np.int64)
    ok_window = done.copy()
    window_sets: list[np.ndarray] = []
    for k in range(config.n_edge_sets):
        p = np.rint(ext_start + k * config.edge_set_spacing).astype(np.int64)
        p, fail = _advance(p, True)                      # reach dominant
        bad = ok_window & fail
        err[bad] = _ERR_EDGE_SEARCH
        ok_window &= ~fail
        p, fail = _advance(p, False)                     # falling crossing
        bad = ok_window & fail
        err[bad] = _ERR_EDGE_SEARCH
        ok_window &= ~fail
        lo_f = p - prefix
        hi_f = p + suffix
        bad = ok_window & ((lo_f < 0) | (hi_f > lengths))
        err[bad] = _ERR_WINDOW
        e1[bad] = lo_f[bad]
        e2[bad] = hi_f[bad]
        ok_window &= ~bad
        gather = flat_base[:, None] + np.clip(
            p[:, None] + window_offsets[None, :], 0, s_max - 1
        )
        falling = samples_flat.take(gather)
        p = np.rint(p + half_bit).astype(np.int64)
        p, fail = _advance(p, True)                      # rising crossing
        bad = ok_window & fail
        err[bad] = _ERR_EDGE_SEARCH
        ok_window &= ~fail
        lo_r = p - prefix
        hi_r = p + suffix
        bad = ok_window & ((lo_r < 0) | (hi_r > lengths))
        err[bad] = _ERR_WINDOW
        e1[bad] = lo_r[bad]
        e2[bad] = hi_r[bad]
        ok_window &= ~bad
        gather = flat_base[:, None] + np.clip(
            p[:, None] + window_offsets[None, :], 0, s_max - 1
        )
        rising = samples_flat.take(gather)
        window_sets.append(np.concatenate([falling, rising], axis=1))

    if config.n_edge_sets > 1:
        # Axis-0 reduce over the stacked sets adds the slabs in the same
        # sequential order as the scalar walker's np.mean over (k, W).
        vectors = np.mean(np.stack(window_sets, axis=0), axis=0)
    else:
        vectors = window_sets[0]

    out: list[ExtractedEdgeSet | ExtractionError] = []
    for g, trace in enumerate(traces):
        if err[g]:
            out.append(
                ExtractionError(
                    _format_columnar_error(
                        int(err[g]), int(e1[g]), int(e2[g]),
                        int(lengths[g]), first_stable,
                    )
                )
            )
        else:
            out.append(
                ExtractedEdgeSet(
                    source_address=int(identity[g]),
                    vector=vectors[g].copy(),
                    metadata=dict(trace.metadata),
                )
            )
    return out


def _format_columnar_error(
    code: int, a: int, b: int, n: int, first_stable: int
) -> str:
    """The exact scalar-walker message for a columnar per-row error code."""
    if code == _ERR_NO_SOF:
        return "no start-of-frame found (trace never dominant)"
    if code == _ERR_SOF_NOT_DOMINANT:
        return "sample at SOF centre is not dominant"
    if code == _ERR_RAN_OFF:
        return f"bit walk ran off the trace at sample {a}"
    if code == _ERR_STUFF:
        return f"stuff violation near sample {a}: six identical bits"
    if code == _ERR_ENDED:
        return (
            f"trace ended after {a} logical bits; need "
            f"{first_stable} plus an edge set"
        )
    if code == _ERR_EDGE_SEARCH:
        return "edge search ran off the end of the trace"
    return f"edge window [{a}, {b}) exceeds the trace ({n} samples)"


def extract_many(
    traces: Sequence[VoltageTrace],
    config: ExtractionConfig | None = None,
    *,
    skip_failures: bool = False,
    index_base: int = 0,
    impl: str | None = None,
) -> list[ExtractedEdgeSet]:
    """Extract edge sets from many traces.

    A single config derived from the first trace is reused when none is
    given.  With ``skip_failures`` unextractable traces are dropped
    (useful for noisy scenario sweeps); otherwise the first failure
    raises, annotated with the failing message's index (offset by
    ``index_base`` so parallel chunks report run-global positions) and
    its sample offset in the capture.
    """
    results, skipped = extract_many_indexed(
        traces,
        config,
        skip_failures=skip_failures,
        index_base=index_base,
        impl=impl,
    )
    if skipped:
        from repro.obs import get_registry

        get_registry().counter(
            "vprofile_extraction_skipped_total",
            help="Traces dropped by extract_many(skip_failures=True)",
        ).inc(len(skipped))
    return results


def extract_many_indexed(
    traces: Sequence[VoltageTrace],
    config: ExtractionConfig | None = None,
    *,
    skip_failures: bool = False,
    index_base: int = 0,
    impl: str | None = None,
) -> tuple[list[ExtractedEdgeSet], list[tuple[int, str]]]:
    """:func:`extract_many` plus the skip ledger, without counting.

    Returns ``(results, skipped)`` where ``skipped`` lists
    ``(global_message_index, reason)`` for every dropped trace.  Worker
    processes use this instead of :func:`extract_many` so skip counts
    survive the process boundary: the parent folds the ledgers into the
    ``vprofile_extraction_skipped_total`` counter exactly once.
    """
    if not traces:
        return [], []
    if config is None:
        config = ExtractionConfig.for_trace(traces[0])
    impl = resolve_extract_impl(impl)
    results: list[ExtractedEdgeSet] = []
    skipped: list[tuple[int, str]] = []
    if impl == "vector" and len(traces) > 1:
        for offset, outcome in enumerate(extract_edge_sets_batch(traces, config)):
            if isinstance(outcome, ExtractionError):
                if not skip_failures:
                    trace = traces[offset]
                    raise ExtractionError(
                        f"message {index_base + offset} "
                        f"(sample offset "
                        f"{int(round(trace.start_s * trace.sample_rate))})"
                        f": {outcome}"
                    ) from outcome
                skipped.append((index_base + offset, str(outcome)))
            else:
                results.append(outcome)
        return results, skipped
    for offset, trace in enumerate(traces):
        try:
            results.append(extract_edge_set(trace, config, impl=impl))
        except ExtractionError as exc:
            if not skip_failures:
                raise ExtractionError(
                    f"message {index_base + offset} "
                    f"(sample offset {int(round(trace.start_s * trace.sample_rate))})"
                    f": {exc}"
                ) from exc
            skipped.append((index_base + offset, str(exc)))
    return results, skipped


def cluster_threshold(trace: VoltageTrace) -> float:
    """Per-cluster extraction threshold (Section 5.1).

    The mean of the maximum and minimum of the *first half* of the
    message — the second half is excluded because the ACK slot voltage,
    driven by a different ECU, can deviate significantly.
    """
    samples = np.asarray(trace.counts, dtype=float)
    half = samples[: max(1, samples.size // 2)]
    return float((half.max() + half.min()) / 2.0)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------

def _value_at(values: list[float], pos: float, threshold: float) -> int:
    index = int(round(pos))
    if index < 0 or index >= len(values):
        raise ExtractionError(f"bit walk ran off the trace at sample {index}")
    return 0 if values[index] >= threshold else 1


def _find_sof(samples: np.ndarray, threshold: float) -> int:
    """First sample at or above the threshold: start of the dominant SOF."""
    above = np.nonzero(samples >= threshold)[0]
    if above.size == 0:
        raise ExtractionError("no start-of-frame found (trace never dominant)")
    return int(above[0])


def _align_to_edge_center(
    values: list[float], pos: float, threshold: float, bit_width: float
) -> float:
    """Locate the threshold crossing behind ``pos`` (AlignToEdgeCenter).

    The walker detected a polarity change between the previous bit centre
    and ``pos``, so the crossing lies within the last ``bit_width``
    samples.  Scan backwards while the polarity still matches the new
    bit.
    """
    index = int(round(pos))
    floor = max(0, int(round(pos - bit_width)))
    j = index
    if values[index] >= threshold:  # new bit is dominant (decodes as 0)
        while j > floor and values[j - 1] >= threshold:
            j -= 1
    else:
        while j > floor and values[j - 1] < threshold:
            j -= 1
    return float(j)


def _decode_identity(bit_values: list[int], frame_format: FrameFormat) -> int:
    """Decode the sender-identity field (MSB first).

    The J1939 SA (bits 24-31) for extended frames, or the whole 11-bit
    identifier (bits 1-11) for standard frames.
    """
    first, last = frame_format.id_first_bit, frame_format.id_last_bit
    id_bits = bit_values[first : last + 1]
    if len(id_bits) != last - first + 1:
        raise ExtractionError("not enough bits decoded to recover the sender id")
    value = 0
    for bit in id_bits:
        value = (value << 1) | bit
    return value


def _extract_window_pair(
    samples: np.ndarray, values: list[float], start: float, config: ExtractionConfig
) -> np.ndarray:
    """ExtractEdgeSet from Algorithm 1: windows at the next two crossings.

    From ``start`` (inside or before a dominant region): skip any
    recessive run, skip the dominant run to its falling crossing, window
    it; advance half a bit, find the next rising crossing, window it.
    The sample-by-sample scans run over the plain-float ``values`` list
    (cheap scalar indexing); the windows slice the NumPy ``samples``.
    """
    threshold = config.threshold
    n = len(values)
    pos = int(round(start))

    while pos < n and values[pos] < threshold:   # reach dominant
        pos += 1
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    while pos < n and values[pos] >= threshold:  # falling crossing
        pos += 1
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    falling = _window(samples, pos, config)
    pos = int(round(pos + config.bit_width / 2.0))
    while pos < n and values[pos] < threshold:   # rising crossing
        pos += 1
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    rising = _window(samples, pos, config)
    return np.concatenate([falling, rising])


def _advance_to_polarity(
    above: bytes, edges: list[int], pos: int, want_above: bool
) -> int:
    """First index ``>= pos`` whose thresholded polarity is ``want_above``.

    Replays the scalar walker's forward sample scan over the edge index:
    if ``pos`` already matches it is returned unchanged, otherwise the
    next polarity run of the wanted sign starts at one of the following
    edges (runs alternate, so at most two are inspected).  Raises the
    scan's off-the-end error when no such sample exists.
    """
    n = len(above)
    if pos < n and bool(above[pos]) == want_above:
        return pos
    k = bisect_right(edges, pos)
    while k < len(edges):
        edge = edges[k]
        if bool(above[edge]) == want_above:
            return edge
        k += 1
    raise ExtractionError("edge search ran off the end of the trace")


def _extract_window_pair_vector(
    samples: np.ndarray,
    above: bytes,
    edges: list[int],
    start: float,
    config: ExtractionConfig,
) -> np.ndarray:
    """Edge-index form of :func:`_extract_window_pair` (byte-identical)."""
    n = samples.size
    pos = int(round(start))
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    pos = _advance_to_polarity(above, edges, pos, True)    # reach dominant
    pos = _advance_to_polarity(above, edges, pos, False)   # falling crossing
    falling = _window(samples, pos, config)
    pos = int(round(pos + config.bit_width / 2.0))
    pos = _advance_to_polarity(above, edges, pos, True)    # rising crossing
    rising = _window(samples, pos, config)
    return np.concatenate([falling, rising])


def _window(samples: np.ndarray, pos: int, config: ExtractionConfig) -> np.ndarray:
    lo = pos - config.prefix_len
    hi = pos + config.suffix_len
    if lo < 0 or hi > samples.size:
        raise ExtractionError(
            f"edge window [{lo}, {hi}) exceeds the trace ({samples.size} samples)"
        )
    return samples[lo:hi].astype(float)
