"""Edge-set extraction — Algorithm 1 of the paper.

Walks the sampled voltage of one CAN message, staying bit-synchronised by
re-centering on every observed edge, skips stuff bits, decodes the J1939
source address from logical bits 24-31, and — once past the arbitration
field (bit 33) — extracts the first *edge set*: a fixed number of samples
around the next falling and rising threshold crossings.

Naming note: the thesis prose says "iterate until the first rising edge
... then find the falling edge", but its pseudocode (and the fact that
bit 33, the r1 reserved bit, is always dominant) means the first crossing
encountered is the *falling* one.  We follow the pseudocode: the edge set
is [falling-edge window, rising-edge window].  The ordering is irrelevant
to the classifier as long as it is consistent.

Two Chapter 5 enhancements live here as options:

* per-cluster extraction thresholds (Section 5.1), computed as the mean
  of the max and min of the first half of a message;
* multi-edge-set averaging (Section 5.2): extract several edge sets
  spaced a fixed number of samples apart and use their mean.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from enum import Enum

from repro.acquisition.adc import AdcConfig
from repro.acquisition.trace import VoltageTrace
from repro.errors import ExtractionError
from repro.obs.spans import stage_timer

#: Logical bit positions in an extended frame (SOF = bit 0, stuff bits
#: excluded): the J1939 SA occupies bits 24-31 and bit 33 is the first
#: bit after the arbitration field (paper Section 3.2.1).
SA_FIRST_BIT = 24
SA_LAST_BIT = 31
FIRST_STABLE_BIT = 33

#: The same landmarks for standard (CAN 2.0A) frames — the paper's
#: Section 6.1 future-work adaptation.  The whole 11-bit identifier is
#: the sender identity (bits 1-11); the arbitration field ends with the
#: RTR bit at position 12, so bit 13 (IDE) is the first stable bit.
STD_ID_FIRST_BIT = 1
STD_ID_LAST_BIT = 11
STD_FIRST_STABLE_BIT = 13


class FrameFormat(str, Enum):
    """Which CAN frame layout the extractor walks."""

    EXTENDED = "extended"   # CAN 2.0B / J1939 (the paper's vehicles)
    STANDARD = "standard"   # CAN 2.0A (Section 6.1 future work)

    @property
    def id_first_bit(self) -> int:
        return SA_FIRST_BIT if self is FrameFormat.EXTENDED else STD_ID_FIRST_BIT

    @property
    def id_last_bit(self) -> int:
        return SA_LAST_BIT if self is FrameFormat.EXTENDED else STD_ID_LAST_BIT

    @property
    def first_stable_bit(self) -> int:
        return (
            FIRST_STABLE_BIT
            if self is FrameFormat.EXTENDED
            else STD_FIRST_STABLE_BIT
        )

#: Paper constants for a 10 MS/s capture of a 250 kb/s bus.
REFERENCE_PREFIX_S = 0.2e-6   # 2 samples at 10 MS/s
REFERENCE_SUFFIX_S = 1.4e-6   # 14 samples at 10 MS/s
REFERENCE_EDGE_SET_SPACING_S = 25e-6  # 250 samples at 10 MS/s
#: The extraction threshold should horizontally bisect an edge; half the
#: nominal 2 V dominant differential.
REFERENCE_THRESHOLD_V = 1.0


@dataclass(frozen=True)
class ExtractionConfig:
    """Constants of Algorithm 1 (paper Section 3.2.1).

    Attributes
    ----------
    bit_width:
        Samples per bus bit (40 at 10 MS/s on a 250 kb/s bus).
    threshold:
        ADC-count value bisecting the rising edge ("38,000 is a good
        starting point" for 16-bit captures).
    prefix_len / suffix_len:
        Samples kept before / after each threshold crossing.
    n_edge_sets:
        How many edge sets to extract and average (Section 5.2; 1 in the
        base algorithm).
    edge_set_spacing:
        Sample distance between the starting points of consecutive edge
        sets when ``n_edge_sets > 1``.
    frame_format:
        Extended (J1939, the paper's vehicles) or standard frames
        (Section 6.1 future work).  Selects the identity-field bit
        positions and the first stable bit.
    """

    bit_width: float
    threshold: float
    prefix_len: int = 2
    suffix_len: int = 14
    n_edge_sets: int = 1
    edge_set_spacing: int = 250
    frame_format: FrameFormat = FrameFormat.EXTENDED

    def __post_init__(self) -> None:
        if self.bit_width < 4:
            raise ExtractionError(
                f"bit width {self.bit_width} too small to synchronise on"
            )
        if self.prefix_len < 0 or self.suffix_len < 1:
            raise ExtractionError("prefix must be >= 0 and suffix >= 1")
        if self.n_edge_sets < 1:
            raise ExtractionError("n_edge_sets must be at least 1")
        if self.n_edge_sets > 1 and self.edge_set_spacing < 1:
            raise ExtractionError("edge_set_spacing must be positive")

    @property
    def edge_set_length(self) -> int:
        """Dimensionality of one extracted edge set (two edge windows)."""
        return 2 * (self.prefix_len + self.suffix_len)

    @classmethod
    def for_trace(
        cls,
        trace: VoltageTrace,
        *,
        threshold: float | None = None,
        n_edge_sets: int = 1,
        frame_format: FrameFormat = FrameFormat.EXTENDED,
    ) -> "ExtractionConfig":
        """Derive constants for a trace's rate / resolution.

        Scales the paper's 10 MS/s reference constants (prefix 2, suffix
        14, 250-sample spacing) with the actual sample rate, and places
        the threshold at 1 V on the trace's ADC code axis.
        """
        fs = trace.sample_rate
        if threshold is None:
            adc = AdcConfig(resolution_bits=trace.resolution_bits)
            threshold = adc.volts_to_counts(REFERENCE_THRESHOLD_V)
        prefix = max(1, round(REFERENCE_PREFIX_S * fs))
        suffix = max(2, round(REFERENCE_SUFFIX_S * fs))
        spacing = max(1, round(REFERENCE_EDGE_SET_SPACING_S * fs))
        return cls(
            bit_width=trace.samples_per_bit,
            threshold=float(threshold),
            prefix_len=prefix,
            suffix_len=suffix,
            n_edge_sets=n_edge_sets,
            edge_set_spacing=spacing,
            frame_format=frame_format,
        )

    def with_threshold(self, threshold: float) -> "ExtractionConfig":
        """Copy with a different edge threshold (Section 5.1)."""
        return replace(self, threshold=float(threshold))


@dataclass(frozen=True)
class ExtractedEdgeSet:
    """Result of Algorithm 1 for one message.

    Attributes
    ----------
    source_address:
        J1939 SA decoded from logical bits 24-31.
    vector:
        The edge-set feature vector (mean of ``n_edge_sets`` windows).
    metadata:
        Ground-truth annotations copied from the trace.
    """

    source_address: int
    vector: np.ndarray
    metadata: dict[str, Any]

    @property
    def identity(self) -> int:
        """Generic sender-identity key.

        Equals the J1939 SA for extended frames and the 11-bit CAN
        identifier for standard frames (Section 6.1 adaptation).
        """
        return self.source_address


def get_bit_value(sample: float, threshold: float) -> int:
    """GetBitValue from Algorithm 1: dominant (high voltage) decodes as 0."""
    return 0 if sample >= threshold else 1


def extract_edge_set(trace: VoltageTrace, config: ExtractionConfig) -> ExtractedEdgeSet:
    """Run Algorithm 1 on one trace.

    Observability: times into ``vprofile_stage_seconds{stage="extract"}``
    when a metrics registry is enabled (no-op otherwise).

    Raises
    ------
    ExtractionError
        If the trace is too short, no SOF is found, or a stuff violation
        is encountered.
    """
    with stage_timer("extract"):
        return _extract_edge_set(trace, config)


def _extract_edge_set(trace: VoltageTrace, config: ExtractionConfig) -> ExtractedEdgeSet:
    samples = np.asarray(trace.counts, dtype=float)
    # The bit walker touches samples one at a time; plain-float list
    # indexing is several times cheaper than NumPy scalar indexing, and
    # tolist() yields the exact same float64 values.
    values = samples.tolist()
    n_values = len(values)
    threshold = config.threshold
    bit_width = config.bit_width
    half_bit = bit_width / 2.0
    id_last_bit = config.frame_format.id_last_bit
    first_stable_bit = config.frame_format.first_stable_bit

    sof = _find_sof(samples, threshold)
    pos = sof + half_bit
    bit_values: list[int] = [_value_at(values, pos, threshold)]
    if bit_values[0] != 0:
        raise ExtractionError("sample at SOF centre is not dominant")

    prev_bit = 0
    run_length = 1
    bit_count = 0  # counts logical bits appended after SOF
    source_address: int | None = None
    extraction_start: float | None = None

    while pos + bit_width < n_values:
        pos += bit_width
        # Inline _value_at: this loop runs once per wire bit and
        # dominates extraction time.
        index = int(round(pos))
        if index >= n_values:
            raise ExtractionError(f"bit walk ran off the trace at sample {index}")
        bit = 0 if values[index] >= threshold else 1
        is_stuff = False
        if bit != prev_bit:
            # Re-centre on the observed edge to hold synchronisation.
            crossing = _align_to_edge_center(values, pos, threshold, bit_width)
            pos = crossing + half_bit
            if run_length == 5:
                # After five identical bits the opposite-polarity bit is
                # a stuff bit: consume it but keep it out of the logical
                # stream.  It still seeds the next run (ISO 11898-1).
                is_stuff = True
            run_length = 1
            prev_bit = bit
        else:
            run_length += 1
            if run_length == 6:
                raise ExtractionError(
                    f"stuff violation near sample {int(pos)}: six identical bits"
                )
        if is_stuff:
            continue
        bit_values.append(bit)
        bit_count += 1
        if bit_count == id_last_bit:
            source_address = _decode_identity(bit_values, config.frame_format)
        elif bit_count == first_stable_bit:
            extraction_start = pos
            break

    if source_address is None or extraction_start is None:
        raise ExtractionError(
            f"trace ended after {bit_count} logical bits; need "
            f"{config.frame_format.first_stable_bit} plus an edge set"
        )

    windows = []
    start = extraction_start
    for k in range(config.n_edge_sets):
        windows.append(_extract_window_pair(samples, values, start, config))
        start = extraction_start + (k + 1) * config.edge_set_spacing
    vector = np.mean(windows, axis=0) if len(windows) > 1 else windows[0]

    return ExtractedEdgeSet(
        source_address=source_address,
        vector=np.asarray(vector, dtype=float),
        metadata=dict(trace.metadata),
    )


def extract_many(
    traces: Sequence[VoltageTrace],
    config: ExtractionConfig | None = None,
    *,
    skip_failures: bool = False,
) -> list[ExtractedEdgeSet]:
    """Extract edge sets from many traces.

    A single config derived from the first trace is reused when none is
    given.  With ``skip_failures`` unextractable traces are dropped
    (useful for noisy scenario sweeps); otherwise the first failure
    raises.
    """
    if not traces:
        return []
    if config is None:
        config = ExtractionConfig.for_trace(traces[0])
    results: list[ExtractedEdgeSet] = []
    skipped = 0
    for trace in traces:
        try:
            results.append(extract_edge_set(trace, config))
        except ExtractionError:
            if not skip_failures:
                raise
            skipped += 1
    if skipped:
        from repro.obs import get_registry

        get_registry().counter(
            "vprofile_extraction_skipped_total",
            help="Traces dropped by extract_many(skip_failures=True)",
        ).inc(skipped)
    return results


def cluster_threshold(trace: VoltageTrace) -> float:
    """Per-cluster extraction threshold (Section 5.1).

    The mean of the maximum and minimum of the *first half* of the
    message — the second half is excluded because the ACK slot voltage,
    driven by a different ECU, can deviate significantly.
    """
    samples = np.asarray(trace.counts, dtype=float)
    half = samples[: max(1, samples.size // 2)]
    return float((half.max() + half.min()) / 2.0)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------

def _value_at(values: list[float], pos: float, threshold: float) -> int:
    index = int(round(pos))
    if index < 0 or index >= len(values):
        raise ExtractionError(f"bit walk ran off the trace at sample {index}")
    return 0 if values[index] >= threshold else 1


def _find_sof(samples: np.ndarray, threshold: float) -> int:
    """First sample at or above the threshold: start of the dominant SOF."""
    above = np.nonzero(samples >= threshold)[0]
    if above.size == 0:
        raise ExtractionError("no start-of-frame found (trace never dominant)")
    return int(above[0])


def _align_to_edge_center(
    values: list[float], pos: float, threshold: float, bit_width: float
) -> float:
    """Locate the threshold crossing behind ``pos`` (AlignToEdgeCenter).

    The walker detected a polarity change between the previous bit centre
    and ``pos``, so the crossing lies within the last ``bit_width``
    samples.  Scan backwards while the polarity still matches the new
    bit.
    """
    index = int(round(pos))
    floor = max(0, int(round(pos - bit_width)))
    j = index
    if values[index] >= threshold:  # new bit is dominant (decodes as 0)
        while j > floor and values[j - 1] >= threshold:
            j -= 1
    else:
        while j > floor and values[j - 1] < threshold:
            j -= 1
    return float(j)


def _decode_identity(bit_values: list[int], frame_format: FrameFormat) -> int:
    """Decode the sender-identity field (MSB first).

    The J1939 SA (bits 24-31) for extended frames, or the whole 11-bit
    identifier (bits 1-11) for standard frames.
    """
    first, last = frame_format.id_first_bit, frame_format.id_last_bit
    id_bits = bit_values[first : last + 1]
    if len(id_bits) != last - first + 1:
        raise ExtractionError("not enough bits decoded to recover the sender id")
    value = 0
    for bit in id_bits:
        value = (value << 1) | bit
    return value


def _extract_window_pair(
    samples: np.ndarray, values: list[float], start: float, config: ExtractionConfig
) -> np.ndarray:
    """ExtractEdgeSet from Algorithm 1: windows at the next two crossings.

    From ``start`` (inside or before a dominant region): skip any
    recessive run, skip the dominant run to its falling crossing, window
    it; advance half a bit, find the next rising crossing, window it.
    The sample-by-sample scans run over the plain-float ``values`` list
    (cheap scalar indexing); the windows slice the NumPy ``samples``.
    """
    threshold = config.threshold
    n = len(values)
    pos = int(round(start))

    while pos < n and values[pos] < threshold:   # reach dominant
        pos += 1
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    while pos < n and values[pos] >= threshold:  # falling crossing
        pos += 1
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    falling = _window(samples, pos, config)
    pos = int(round(pos + config.bit_width / 2.0))
    while pos < n and values[pos] < threshold:   # rising crossing
        pos += 1
    if pos >= n:
        raise ExtractionError("edge search ran off the end of the trace")
    rising = _window(samples, pos, config)
    return np.concatenate([falling, rising])


def _window(samples: np.ndarray, pos: int, config: ExtractionConfig) -> np.ndarray:
    lo = pos - config.prefix_len
    hi = pos + config.suffix_len
    if lo < 0 or hi > samples.size:
        raise ExtractionError(
            f"edge window [{lo}, {hi}) exceeds the trace ({samples.size} samples)"
        )
    return samples[lo:hi].astype(float)
