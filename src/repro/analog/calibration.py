"""Fingerprint estimation: fit transceiver parameters from traces.

The forward model (:mod:`repro.analog.waveform`) turns a
:class:`~repro.analog.transceiver.TransceiverParams` into voltages; this
module solves the inverse problem — estimating an ECU's electrical
fingerprint from digitized captures.  Two uses:

* building a synthetic vehicle from *real* captures, so the simulator
  can stand in for hardware a lab no longer has access to;
* sanity-checking the physical plausibility of a synthetic vehicle
  (the round trip ``params -> waveform -> params`` should close).

Levels come from trimmed plateau means; edge dynamics from a
least-squares fit of the second-order step response to the averaged,
sub-sample-aligned rising and falling edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.acquisition.trace import VoltageTrace
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.analog.waveform import step_response
from repro.errors import WaveformError


@dataclass(frozen=True)
class LevelEstimate:
    """Plateau-level estimates of one capture."""

    v_dominant: float
    v_recessive: float
    n_dominant_samples: int
    n_recessive_samples: int


def estimate_levels(
    volts: np.ndarray, *, threshold_v: float = 1.0, settle_samples: int = 12
) -> LevelEstimate:
    """Estimate dominant/recessive levels from one message's voltages.

    Samples within ``settle_samples`` of any threshold crossing are
    discarded so edges, ringing and slow relaxation tails do not bias
    the plateau means.  Size the guard to cover the slowest edge's
    settling time (~0.5 us, i.e. ~12 samples at 20 MS/s).
    """
    volts = np.asarray(volts, dtype=float)
    above = volts >= threshold_v
    crossings = np.nonzero(np.diff(above.astype(np.int8)) != 0)[0]
    mask = np.ones(volts.size, dtype=bool)
    for crossing in crossings:
        lo = max(0, crossing - settle_samples)
        hi = min(volts.size, crossing + settle_samples + 2)
        mask[lo:hi] = False
    dominant = volts[above & mask]
    recessive = volts[~above & mask]
    if dominant.size == 0 or recessive.size == 0:
        raise WaveformError("capture lacks settled dominant/recessive plateaus")
    return LevelEstimate(
        v_dominant=float(dominant.mean()),
        v_recessive=float(recessive.mean()),
        n_dominant_samples=int(dominant.size),
        n_recessive_samples=int(recessive.size),
    )


def _collect_edges(
    volts: np.ndarray,
    *,
    rising: bool,
    threshold_v: float,
    pre: int,
    post: int,
    guard: int,
) -> list[np.ndarray]:
    """Edge windows with a settled run before and after the crossing."""
    above = volts >= threshold_v
    windows = []
    deltas = np.diff(above.astype(np.int8))
    wanted = 1 if rising else -1
    for crossing in np.nonzero(deltas == wanted)[0]:
        lo = crossing + 1 - pre
        hi = crossing + 1 + post
        if lo < guard or hi + guard > volts.size:
            continue
        before = above[crossing + 1 - guard : crossing + 1]
        after = above[crossing + 1 : crossing + 1 + guard]
        if rising and (before.any() or not after.all()):
            continue
        if not rising and (not before.all() or after.any()):
            continue
        windows.append(volts[lo:hi].copy())
    return windows


@dataclass(frozen=True)
class EdgeFit:
    """Fitted dynamics of one transition direction."""

    dynamics: EdgeDynamics
    residual_rms_v: float
    n_edges: int


def fit_edge_dynamics(
    traces: list[VoltageTrace],
    *,
    rising: bool,
    v_start: float,
    v_target: float,
    threshold_v: float = 1.0,
    max_edges: int = 400,
) -> EdgeFit:
    """Fit (natural frequency, damping) of one edge direction.

    Pools sub-sample-aligned edge windows from many messages and solves
    a bounded least-squares problem against the second-order step
    response, with the exact crossing time as a nuisance parameter.
    """
    if not traces:
        raise WaveformError("no traces supplied")
    sample_rate = traces[0].sample_rate
    dt = 1.0 / sample_rate
    pre, post, guard = 2, 14, 6

    samples_t: list[np.ndarray] = []
    samples_v: list[np.ndarray] = []
    collected = 0
    for trace in traces:
        volts = trace.to_volts()
        for window in _collect_edges(
            volts, rising=rising, threshold_v=threshold_v, pre=pre, post=post, guard=guard
        ):
            # Sub-sample crossing time by linear interpolation around the
            # threshold inside the window (crossing is at index `pre`).
            v0, v1 = window[pre - 1], window[pre]
            if v1 == v0:
                frac = 0.0
            else:
                frac = (threshold_v - v0) / (v1 - v0)
            t_cross = (pre - 1 + frac) * dt
            times = np.arange(window.size) * dt - t_cross
            keep = times >= 0
            samples_t.append(times[keep])
            samples_v.append(window[keep])
            collected += 1
            if collected >= max_edges:
                break
        if collected >= max_edges:
            break
    if collected < 3:
        raise WaveformError("too few clean edges found to fit dynamics")

    t = np.concatenate(samples_t)
    v = np.concatenate(samples_v)

    # The threshold crossing is not the transition start; solve for the
    # lead time `t0 >= 0` between bit boundary and crossing jointly with
    # the dynamics.
    def residuals(params):
        freq, zeta, lead = params
        model = step_response(t + lead, v_start, v_target, EdgeDynamics(freq, zeta))
        return model - v

    swing = abs(v_target - v_start)
    guess_freq = 1.0e6
    result = least_squares(
        residuals,
        x0=[guess_freq, 0.8, 2.0 * dt],
        bounds=([1e4, 0.2, 0.0], [5e7, 3.0, 20.0 * dt]),
        xtol=1e-12,
        ftol=1e-12,
    )
    freq, zeta, _ = result.x
    rms = float(np.sqrt(np.mean(result.fun**2)))
    if rms > 0.5 * swing:
        raise WaveformError("edge fit did not converge to a plausible response")
    return EdgeFit(
        dynamics=EdgeDynamics(float(freq), float(zeta)),
        residual_rms_v=rms,
        n_edges=collected,
    )


def estimate_fingerprint(
    traces: list[VoltageTrace],
    name: str,
    *,
    threshold_v: float = 1.0,
) -> TransceiverParams:
    """Estimate a full :class:`TransceiverParams` from captures of one ECU.

    Environment coefficients cannot be observed from a single operating
    point and are returned as zero; sweep the environment and difference
    the levels to calibrate them.
    """
    if not traces:
        raise WaveformError("no traces supplied")
    settle = max(4, round(0.6e-6 * traces[0].sample_rate))
    levels = [
        estimate_levels(
            t.to_volts(), threshold_v=threshold_v, settle_samples=settle
        )
        for t in traces
    ]
    v_dom = float(np.median([l.v_dominant for l in levels]))
    v_rec = float(np.median([l.v_recessive for l in levels]))
    rise = fit_edge_dynamics(
        traces, rising=True, v_start=v_rec, v_target=v_dom, threshold_v=threshold_v
    )
    fall = fit_edge_dynamics(
        traces, rising=False, v_start=v_dom, v_target=v_rec, threshold_v=threshold_v
    )
    return TransceiverParams(
        name=name,
        v_dominant=v_dom,
        v_recessive=v_rec,
        rise=rise.dynamics,
        fall=fall.dynamics,
    )
