"""Analog physical-layer substrate: transceivers, channel, environment.

Synthesises the differential CAN bus voltage that the paper measured on
real trucks, preserving the statistical structure vProfile depends on:
per-ECU levels and edge dynamics, sampling-phase jitter, and correlated
channel noise.
"""

from repro.analog.calibration import (
    EdgeFit,
    LevelEstimate,
    estimate_fingerprint,
    estimate_levels,
    fit_edge_dynamics,
)
from repro.analog.channel import NOISY_CHANNEL, QUIET_CHANNEL, ChannelNoise
from repro.analog.environment import (
    ACCESSORY_AC,
    ACCESSORY_LIGHTS,
    ACCESSORY_LIGHTS_AC,
    ACCESSORY_MODE,
    ENGINE_RUNNING,
    NOMINAL_BATTERY_V,
    NOMINAL_ENVIRONMENT,
    NOMINAL_TEMPERATURE_C,
    Environment,
)
from repro.analog.transceiver import EdgeDynamics, TransceiverParams, perturbed
from repro.analog.waveform import (
    SynthesisConfig,
    rendered_sample_count,
    step_response,
    synthesize_waveform,
)

__all__ = [
    "EdgeFit",
    "LevelEstimate",
    "estimate_fingerprint",
    "estimate_levels",
    "fit_edge_dynamics",
    "NOISY_CHANNEL",
    "QUIET_CHANNEL",
    "ChannelNoise",
    "ACCESSORY_AC",
    "ACCESSORY_LIGHTS",
    "ACCESSORY_LIGHTS_AC",
    "ACCESSORY_MODE",
    "ENGINE_RUNNING",
    "NOMINAL_BATTERY_V",
    "NOMINAL_ENVIRONMENT",
    "NOMINAL_TEMPERATURE_C",
    "Environment",
    "EdgeDynamics",
    "TransceiverParams",
    "perturbed",
    "SynthesisConfig",
    "rendered_sample_count",
    "step_response",
    "synthesize_waveform",
]
