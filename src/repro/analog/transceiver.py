"""Per-ECU CAN transceiver electrical model.

Section 2.2.1 of the paper: manufacturing variation gives every ECU's
output driver a unique, practically inimitable electrical signature —
slightly different dominant drive levels, edge dynamics and ringing.
This module captures that signature as an explicit parameter set.  The
waveform synthesiser turns the parameters plus a bit sequence into a
differential bus voltage.

Edge dynamics are modelled as a second-order step response.  The rising
(recessive->dominant) transition is actively driven and typically fast
and under-damped (visible overshoot); the falling (dominant->recessive)
transition is a passive relaxation through the termination network and is
slower and closer to critically damped.  Environment sensitivity enters
through linear temperature and supply-voltage coefficients, which is what
the paper's Section 4.4 drift experiments measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.analog.environment import (
    NOMINAL_BATTERY_V,
    NOMINAL_TEMPERATURE_C,
    Environment,
)
from repro.errors import WaveformError


@dataclass(frozen=True)
class EdgeDynamics:
    """Second-order dynamics of one transition direction.

    Attributes
    ----------
    natural_freq_hz:
        Undamped natural frequency ``f_n`` of the driver + bus-load
        system.  Real CAN edges settle within 100-300 ns, i.e. a few MHz.
    damping:
        Damping ratio ``zeta``.  Below 1 the edge overshoots and rings;
        at or above 1 it relaxes monotonically.
    """

    natural_freq_hz: float
    damping: float

    def __post_init__(self) -> None:
        if self.natural_freq_hz <= 0:
            raise WaveformError(f"natural frequency must be positive, got {self.natural_freq_hz}")
        if self.damping <= 0:
            raise WaveformError(f"damping ratio must be positive, got {self.damping}")

    @property
    def omega_n(self) -> float:
        """Angular natural frequency in rad/s."""
        return 2.0 * math.pi * self.natural_freq_hz

    def step_constants(self) -> "StepConstants":
        """The ζ/ωn-derived constants of the step response, cached.

        Waveform synthesis evaluates the step response once per edge per
        message; hoisting the scalar derivations (damped frequency,
        envelope ratio, over-damped poles) out of the per-call path costs
        one dict lookup instead of several ``sqrt``/multiplies.  The
        values are computed with exactly the expressions the response
        formula used inline, so results stay bit-identical.
        """
        return _step_constants(self.omega_n, self.damping)

    def settle_time_s(self, tolerance: float = 0.01) -> float:
        """Approximate time to settle within ``tolerance`` of the target."""
        zeta = min(self.damping, 0.999) if self.damping < 1.0 else self.damping
        return -math.log(tolerance) / (zeta * self.omega_n)


@dataclass(frozen=True)
class StepConstants:
    """Pre-derived second-order step-response constants.

    ``kind`` selects the damping regime; unused fields are 0.  For the
    under-damped case ``wd`` is the damped angular frequency and
    ``envelope_ratio`` is ``zeta / sqrt(1 - zeta**2)``; for the
    over-damped case ``s1``/``s2`` are the real poles.
    """

    kind: str  # "under" | "critical" | "over"
    wn: float
    zeta: float
    wd: float = 0.0
    envelope_ratio: float = 0.0
    s1: float = 0.0
    s2: float = 0.0


@lru_cache(maxsize=512)
def _step_constants(wn: float, zeta: float) -> StepConstants:
    if zeta < 1.0:
        return StepConstants(
            kind="under",
            wn=wn,
            zeta=zeta,
            wd=wn * math.sqrt(1.0 - zeta**2),
            envelope_ratio=zeta / math.sqrt(1.0 - zeta**2),
        )
    # Exactly-critical damping is a deliberate branch for the zeta=1.0
    # configs the vehicle profiles pin; near-critical values follow the
    # over/under-damped formulas, which converge to the same response.
    if zeta == 1.0:  # vpl: ignore[VPL104]
        return StepConstants(kind="critical", wn=wn, zeta=zeta)
    root = math.sqrt(zeta**2 - 1.0)
    return StepConstants(
        kind="over",
        wn=wn,
        zeta=zeta,
        s1=wn * (-zeta + root),
        s2=wn * (-zeta - root),
    )


@dataclass(frozen=True)
class TransceiverParams:
    """The complete electrical fingerprint of one ECU's transceiver.

    Voltage levels are *differential* (CAN_H minus CAN_L): ~0 V recessive
    and ~2 V dominant for a healthy ISO 11898-2 node.

    Attributes
    ----------
    name:
        Human-readable label (e.g. ``"ECU0"``).
    v_dominant:
        Differential dominant level at nominal environment, in volts.
    v_recessive:
        Differential recessive level (small non-zero offsets model
        transceiver leakage mismatch), in volts.
    rise / fall:
        Edge dynamics for recessive->dominant and dominant->recessive
        transitions respectively.
    temp_coeff_v_per_c:
        Dominant-level drift in volts per degree Celsius away from the
        nominal 25 degC.  The paper's Figure 4.6 shows ECUs 0 and 2
        drifting much more than the rest, so coefficients vary per ECU.
    temp_coeff_freq_per_c:
        Relative change in both edge natural frequencies per degree.
    batt_coeff_per_v:
        Relative dominant-level change per volt of battery deviation
        from the nominal 13.6 V (transceivers regulate their 5 V rail, so
        this is small — matching the paper's Section 4.4.2 finding).
    load_coeff_v_per_a:
        Dominant-level sag per ampere of accessory load (ground-offset
        shift under heavy current; the paper saw the largest drift with
        lights + A/C on).
    """

    name: str
    v_dominant: float
    v_recessive: float
    rise: EdgeDynamics
    fall: EdgeDynamics
    temp_coeff_v_per_c: float = 0.0
    temp_coeff_freq_per_c: float = 0.0
    batt_coeff_per_v: float = 0.0
    load_coeff_v_per_a: float = 0.0

    def __post_init__(self) -> None:
        if self.v_dominant <= self.v_recessive:
            raise WaveformError(
                f"{self.name}: dominant level ({self.v_dominant} V) must "
                f"exceed recessive level ({self.v_recessive} V)"
            )

    def effective_levels(self, env: Environment) -> tuple[float, float]:
        """Dominant and recessive levels under ``env``.

        Returns
        -------
        (v_dominant, v_recessive) in volts.
        """
        dt = env.temperature_c - NOMINAL_TEMPERATURE_C
        dv_batt = env.battery_v - NOMINAL_BATTERY_V
        v_dom = self.v_dominant
        v_dom += self.temp_coeff_v_per_c * dt
        v_dom *= 1.0 + self.batt_coeff_per_v * dv_batt
        v_dom -= self.load_coeff_v_per_a * env.load_current_a
        # Recessive level is set by the termination network, not the
        # driver; temperature moves it an order of magnitude less.
        v_rec = self.v_recessive + 0.1 * self.temp_coeff_v_per_c * dt
        return v_dom, v_rec

    def effective_dynamics(self, env: Environment) -> tuple[EdgeDynamics, EdgeDynamics]:
        """Rise and fall dynamics under ``env``.

        Edge speed drifts with temperature (MOSFET channel mobility);
        battery voltage barely matters for the regulated driver.
        """
        dt = env.temperature_c - NOMINAL_TEMPERATURE_C
        scale = 1.0 + self.temp_coeff_freq_per_c * dt
        scale = max(scale, 0.05)
        rise = EdgeDynamics(self.rise.natural_freq_hz * scale, self.rise.damping)
        fall = EdgeDynamics(self.fall.natural_freq_hz * scale, self.fall.damping)
        return rise, fall


def perturbed(
    base: TransceiverParams,
    name: str,
    *,
    dv_dominant: float = 0.0,
    dv_recessive: float = 0.0,
    rise_freq_scale: float = 1.0,
    rise_damping_scale: float = 1.0,
    fall_freq_scale: float = 1.0,
    fall_damping_scale: float = 1.0,
) -> TransceiverParams:
    """Derive a new fingerprint from ``base`` with small perturbations.

    Convenient for building families of similar-but-distinct ECUs (the
    Vehicle B scenario: many ECUs with less distinct voltage profiles).
    """
    return TransceiverParams(
        name=name,
        v_dominant=base.v_dominant + dv_dominant,
        v_recessive=base.v_recessive + dv_recessive,
        rise=EdgeDynamics(
            base.rise.natural_freq_hz * rise_freq_scale,
            base.rise.damping * rise_damping_scale,
        ),
        fall=EdgeDynamics(
            base.fall.natural_freq_hz * fall_freq_scale,
            base.fall.damping * fall_damping_scale,
        ),
        temp_coeff_v_per_c=base.temp_coeff_v_per_c,
        temp_coeff_freq_per_c=base.temp_coeff_freq_per_c,
        batt_coeff_per_v=base.batt_coeff_per_v,
        load_coeff_v_per_a=base.load_coeff_v_per_a,
    )
