"""Differential-voltage waveform synthesis for CAN frames.

Turns a stuffed wire bit sequence plus a transceiver fingerprint into the
analog differential voltage a digitizer would see on the bus.  The model:

* each bit targets its transceiver's dominant or recessive level;
* at each bit boundary where the value changes, the voltage follows the
  transceiver's second-order step response (overshoot and ringing for
  under-damped edges);
* the sampling clock is asynchronous to the bus, so every message is
  sampled with a random sub-sample phase offset.  This *sampling jitter*
  is what gives edge sample indices their large variance (paper Figure
  4.4) while steady-state samples stay quiet;
* channel noise (white + correlated + per-message baseline/gain) is
  added on top.

Within a bit time (4 us at 250 kb/s) the MHz-scale edge dynamics settle
completely, so each transition starts from the previous bit's settled
level — the same assumption the paper's extraction algorithm makes when
it treats steady states as "very stable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analog.channel import ChannelNoise
from repro.analog.environment import NOMINAL_ENVIRONMENT, Environment
from repro.analog.transceiver import EdgeDynamics, TransceiverParams
from repro.errors import WaveformError


def step_response(
    dt_s: np.ndarray,
    v_start: np.ndarray,
    v_target: np.ndarray,
    dynamics: EdgeDynamics,
) -> np.ndarray:
    """Second-order step response at times ``dt_s`` after the transition.

    Handles under-, critically- and over-damped cases.  ``dt_s`` must be
    non-negative; ``v_start``/``v_target`` broadcast against it.
    """
    constants = dynamics.step_constants()
    dt = np.asarray(dt_s, dtype=float)
    if np.any(dt < 0):
        raise WaveformError("step_response requires non-negative times")
    if constants.kind == "under":
        envelope = np.exp(-constants.zeta * constants.wn * dt)
        transient = envelope * (
            np.cos(constants.wd * dt)
            + constants.envelope_ratio * np.sin(constants.wd * dt)
        )
    elif constants.kind == "critical":
        transient = np.exp(-constants.wn * dt) * (1.0 + constants.wn * dt)
    else:
        s1, s2 = constants.s1, constants.s2
        transient = (s1 * np.exp(s2 * dt) - s2 * np.exp(s1 * dt)) / (s1 - s2)
    return v_target + (v_start - v_target) * transient


@dataclass(frozen=True)
class SynthesisConfig:
    """How a frame is rendered to samples.

    Attributes
    ----------
    bitrate:
        Bus bit rate (250 kb/s on both evaluation vehicles).
    sample_rate:
        Digitizer rate in samples/second.
    idle_prefix_bits:
        Recessive bus-idle bits rendered before SOF so that edge-set
        extraction can locate the start of frame.
    idle_suffix_bits:
        Recessive bits appended after the last rendered bit.
    max_frame_bits:
        When set, only the first ``max_frame_bits`` wire bits of the
        frame are rendered.  vProfile needs nothing past roughly bit 45,
        so truncation makes large dataset generation cheap.
    """

    bitrate: float = 250_000.0
    sample_rate: float = 10_000_000.0
    idle_prefix_bits: int = 2
    idle_suffix_bits: int = 1
    max_frame_bits: int | None = None

    def __post_init__(self) -> None:
        if self.bitrate <= 0 or self.sample_rate <= 0:
            raise WaveformError("bitrate and sample_rate must be positive")
        if self.sample_rate < 4 * self.bitrate:
            raise WaveformError(
                "sample_rate must be at least 4x the bitrate to resolve bits"
            )
        if self.idle_prefix_bits < 1:
            raise WaveformError("at least one idle prefix bit is required")

    @property
    def samples_per_bit(self) -> float:
        """Digitizer samples per bus bit (40.0 at 10 MS/s on 250 kb/s)."""
        return self.sample_rate / self.bitrate


def synthesize_waveform(
    wire_bits: Sequence[int],
    transceiver: TransceiverParams,
    config: SynthesisConfig,
    *,
    env: Environment = NOMINAL_ENVIRONMENT,
    noise: ChannelNoise | None = None,
    rng: np.random.Generator | None = None,
    phase: float | None = None,
    ack_bit_index: int | None = None,
    ack_driver: TransceiverParams | None = None,
) -> np.ndarray:
    """Render ``wire_bits`` to a differential-voltage sample vector.

    Parameters
    ----------
    wire_bits:
        Stuffed bits as transmitted, 0 = dominant, 1 = recessive,
        starting at SOF.
    transceiver:
        Fingerprint of the transmitting ECU.
    config:
        Rate / framing options.
    env:
        Operating environment (temperature, battery, load).
    noise:
        Channel noise model; ``None`` renders a noiseless waveform.
    rng:
        Random generator for noise and sampling phase.  Required when
        ``noise`` is given or ``phase`` is None and jitter is wanted.
    phase:
        Sub-sample sampling phase in ``[0, 1)``.  ``None`` draws it
        uniformly from ``rng`` (or uses 0 without an rng).
    ack_bit_index:
        Index into ``wire_bits`` of the ACK slot, if the frame includes
        one and a receiver asserts it.
    ack_driver:
        Transceiver of the acknowledging ECU.  The paper notes the ACK
        voltage "can deviate significantly from the rest of the message"
        because a different node drives it.

    Returns
    -------
    numpy.ndarray
        Differential voltage in volts, one entry per digitizer sample.
    """
    if isinstance(wire_bits, np.ndarray):
        wire = wire_bits.astype(np.int8, copy=False)
    else:
        wire = np.asarray(list(wire_bits), dtype=np.int8)
    if wire.size == 0:
        raise WaveformError("cannot synthesise an empty bit sequence")
    if config.max_frame_bits is not None:
        wire = wire[: config.max_frame_bits]

    if phase is None:
        phase = float(rng.uniform(0.0, 1.0)) if rng is not None else 0.0
    if not 0.0 <= phase < 1.0:
        raise WaveformError(f"phase must be in [0, 1), got {phase}")

    # Assemble the rendered bit lane: idle, frame, idle.
    bits = np.concatenate(
        [
            np.ones(config.idle_prefix_bits, dtype=np.int8),
            wire,
            np.ones(config.idle_suffix_bits, dtype=np.int8),
        ]
    )
    ack_lane_index = None
    if ack_bit_index is not None and ack_bit_index < wire.size:
        ack_lane_index = config.idle_prefix_bits + ack_bit_index

    v_dom, v_rec = transceiver.effective_levels(env)
    rise_dyn, fall_dyn = transceiver.effective_dynamics(env)

    baseline = 0.0
    gain = 1.0
    if noise is not None:
        if rng is None:
            raise WaveformError("noise synthesis requires an rng")
        baseline, gain = noise.sample_message_offsets(rng)

    # Per-bit target levels.
    levels = np.where(bits == 0, v_dom * gain, v_rec)
    if ack_lane_index is not None and ack_driver is not None:
        ack_dom, _ = ack_driver.effective_levels(env)
        if bits[ack_lane_index] == 0:
            levels = levels.copy()
            levels[ack_lane_index] = ack_dom * gain

    prev_bits = np.concatenate([[1], bits[:-1]])  # bus idles recessive
    prev_levels = np.concatenate([[v_rec], levels[:-1]])
    is_transition = bits != prev_bits

    # Sample times and bit assignment.
    spb = config.samples_per_bit
    n_bits = bits.size
    n_samples = int(np.floor(n_bits * spb - phase))
    positions = np.arange(n_samples) + phase        # in samples
    bit_index = np.floor(positions / spb).astype(np.int64)
    bit_index = np.clip(bit_index, 0, n_bits - 1)
    dt = (positions - bit_index * spb) / config.sample_rate  # s since bit start

    volts = levels[bit_index].astype(float)
    trans_mask = is_transition[bit_index]
    if np.any(trans_mask):
        to_dominant = bits[bit_index] == 0
        rising = trans_mask & to_dominant
        falling = trans_mask & ~to_dominant
        for mask, dyn in ((rising, rise_dyn), (falling, fall_dyn)):
            if np.any(mask):
                volts[mask] = step_response(
                    dt[mask],
                    prev_levels[bit_index[mask]],
                    levels[bit_index[mask]],
                    dyn,
                )

    volts += baseline
    if noise is not None:
        volts = volts + noise.sample_noise(n_samples, rng)
    return volts


def rendered_sample_count(n_wire_bits: int, config: SynthesisConfig) -> int:
    """Number of samples :func:`synthesize_waveform` produces at phase 0."""
    if config.max_frame_bits is not None:
        n_wire_bits = min(n_wire_bits, config.max_frame_bits)
    n_bits = config.idle_prefix_bits + n_wire_bits + config.idle_suffix_bits
    return int(np.floor(n_bits * config.samples_per_bit))
