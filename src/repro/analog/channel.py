"""Bus channel noise model.

The measured CAN voltage is the transceiver's ideal output plus several
noise processes with very different structure:

* **White measurement noise** — digitizer front-end noise, independent
  per sample.
* **Correlated (AR(1)) noise** — supply ripple and EMI filtered by the
  bus; neighbouring samples are correlated, which is precisely the
  structure the Mahalanobis covariance matrix exploits (Section 4.2.2).
* **Per-message baseline wander** — slow common-mode drift; constant
  within one message but varying between messages.  This inflates the
  Euclidean intra-cluster spread without helping discrimination, and is
  one of the two mechanisms (with edge jitter) behind the Euclidean
  metric's failures in Tables 4.1-4.2.
* **Per-message amplitude jitter** — small relative gain variation of
  the dominant drive (driver supply ripple).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WaveformError


@dataclass(frozen=True)
class ChannelNoise:
    """Noise amplitudes for a capture chain, all in volts (or relative).

    Attributes
    ----------
    white_sigma_v:
        Standard deviation of per-sample white Gaussian noise.
    ar_sigma_v:
        Stationary standard deviation of the AR(1) correlated component.
    ar_coeff:
        AR(1) pole; 0 disables correlation, values near 1 give slow noise.
    baseline_sigma_v:
        Standard deviation of the per-message common-mode offset.
    amplitude_jitter:
        Relative standard deviation of the per-message dominant-level
        gain factor.
    """

    white_sigma_v: float = 0.008
    ar_sigma_v: float = 0.005
    ar_coeff: float = 0.92
    baseline_sigma_v: float = 0.018
    amplitude_jitter: float = 0.002

    def __post_init__(self) -> None:
        for field_name in ("white_sigma_v", "ar_sigma_v", "baseline_sigma_v", "amplitude_jitter"):
            if getattr(self, field_name) < 0:
                raise WaveformError(f"{field_name} must be non-negative")
        if not 0.0 <= self.ar_coeff < 1.0:
            raise WaveformError(f"ar_coeff must be in [0, 1), got {self.ar_coeff}")

    def sample_message_offsets(self, rng: np.random.Generator) -> tuple[float, float]:
        """Draw the per-message (baseline offset, amplitude gain) pair."""
        baseline = float(rng.normal(0.0, self.baseline_sigma_v)) if self.baseline_sigma_v else 0.0
        gain = 1.0 + (float(rng.normal(0.0, self.amplitude_jitter)) if self.amplitude_jitter else 0.0)
        return baseline, gain

    def sample_noise(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the per-sample noise vector (white + AR(1)) for one message."""
        noise = np.zeros(n_samples)
        if self.white_sigma_v:
            noise += rng.normal(0.0, self.white_sigma_v, size=n_samples)
        if self.ar_sigma_v and n_samples:
            from scipy.signal import lfilter

            innovation_sigma = self.ar_sigma_v * np.sqrt(1.0 - self.ar_coeff**2)
            innovations = rng.normal(0.0, innovation_sigma, size=n_samples)
            # Seed the recursion at the stationary distribution so the
            # first samples of a message are not artificially quiet.
            innovations[0] = rng.normal(0.0, self.ar_sigma_v)
            ar = lfilter([1.0], [1.0, -self.ar_coeff], innovations)
            noise += ar
        return noise

    def sample_message_batch(
        self,
        lengths: "list[int]",
        rngs: "list[np.random.Generator]",
    ) -> "tuple[np.ndarray, np.ndarray, list[np.ndarray]]":
        """Offsets and noise vectors for a batch, one generator each.

        Returns ``(baselines, gains, noise_rows)``, byte-identical to
        calling :meth:`sample_message_offsets` then :meth:`sample_noise`
        per message.  Row ``i`` is a length-``lengths[i]`` view into the
        matrix :meth:`sample_message_matrix` builds — copy before
        mutating.
        """
        baselines, gains, noise = self.sample_message_matrix(lengths, rngs)
        return baselines, gains, [
            noise[i, :n] for i, n in enumerate(lengths)
        ]

    def sample_message_matrix(
        self,
        lengths: "list[int]",
        rngs: "list[np.random.Generator]",
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Offsets plus one ``(G, max(lengths))`` noise matrix.

        The first ``lengths[i]`` entries of row ``i`` are byte-identical
        to :meth:`sample_noise` for that generator; entries beyond are
        scratch (zero padding, or the AR recursion's decay tail) and
        must be ignored.  Cheap because ``normal(0, s, k)`` consumes a
        generator exactly like ``s * standard_normal(k)``, so each
        message's draws collapse into a single ``standard_normal`` block
        that is scaled matrix-wide, and the AR(1) recursion runs as one
        row-wise ``lfilter`` over the zero-padded matrix (the filter is
        causal, so padding beyond a row's length never leaks into its
        first ``lengths[i]`` samples).
        """
        if len(lengths) != len(rngs):
            raise WaveformError(
                f"got {len(lengths)} lengths for {len(rngs)} generators"
            )
        n_rows = len(lengths)
        s_max = max(lengths, default=0)
        has_baseline = bool(self.baseline_sigma_v)
        has_gain = bool(self.amplitude_jitter)
        has_white = bool(self.white_sigma_v)
        has_ar = bool(self.ar_sigma_v)

        if n_rows and s_max and min(lengths) == s_max:
            return self._sample_equal_length_batch(s_max, rngs)

        baselines = np.zeros(n_rows)
        gains = np.zeros(n_rows)
        white = np.zeros((n_rows, s_max)) if has_white else None
        innovations = np.zeros((n_rows, s_max)) if has_ar else None
        ar_seeds = np.zeros(n_rows) if has_ar else None
        for i, (n, rng) in enumerate(zip(lengths, rngs)):
            # One block per message, in the serial path's draw order:
            # baseline, gain, white x n, innovations x n, AR seed.
            draws = (
                int(has_baseline)
                + int(has_gain)
                + (n if has_white else 0)
                + (n + 1 if has_ar and n else 0)
            )
            z = rng.standard_normal(draws)
            pos = 0
            if has_baseline:
                baselines[i] = z[0]
                pos = 1
            if has_gain:
                gains[i] = z[pos]
                pos += 1
            if has_white:
                white[i, :n] = z[pos : pos + n]
                pos += n
            if has_ar and n:
                innovations[i, :n] = z[pos : pos + n]
                ar_seeds[i] = z[pos + n]
        baselines *= self.baseline_sigma_v
        gains = 1.0 + self.amplitude_jitter * gains
        if white is not None:
            white *= self.white_sigma_v
        ar = None
        if innovations is not None:
            from scipy.signal import lfilter

            innovations *= self.ar_sigma_v * np.sqrt(1.0 - self.ar_coeff**2)
            # Seed the recursion at the stationary distribution, exactly
            # as sample_noise does for each message.
            innovations[:, 0] = self.ar_sigma_v * ar_seeds
            ar = lfilter([1.0], [1.0, -self.ar_coeff], innovations, axis=1)
        if white is not None and ar is not None:
            white += ar
            noise = white
        elif white is not None:
            noise = white
        elif ar is not None:
            noise = ar
        else:
            noise = np.zeros((n_rows, s_max))
        return baselines, gains, noise

    def _sample_equal_length_batch(
        self,
        n: int,
        rngs: "list[np.random.Generator]",
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Equal-length fast path for :meth:`sample_message_matrix`.

        The engine groups captures by wire length, so every row draws
        the same number of variates: each generator fills one contiguous
        row of a ``(G, draws)`` matrix in place (``standard_normal`` with
        ``out=`` consumes the stream identically to an allocating call)
        and the components come out as column slices — no per-message
        allocation or scatter.
        """
        has_baseline = bool(self.baseline_sigma_v)
        has_gain = bool(self.amplitude_jitter)
        has_white = bool(self.white_sigma_v)
        has_ar = bool(self.ar_sigma_v)
        n_rows = len(rngs)
        draws = (
            int(has_baseline)
            + int(has_gain)
            + (n if has_white else 0)
            + (n + 1 if has_ar else 0)
        )
        z = np.empty((n_rows, draws))
        for i, rng in enumerate(rngs):
            rng.standard_normal(out=z[i])

        pos = 0
        baselines = np.zeros(n_rows)
        gains = np.ones(n_rows)
        if has_baseline:
            baselines = self.baseline_sigma_v * z[:, 0]
            pos = 1
        if has_gain:
            gains = 1.0 + self.amplitude_jitter * z[:, pos]
            pos += 1
        noise = None
        if has_white:
            white = z[:, pos : pos + n]
            white *= self.white_sigma_v
            noise = white
            pos += n
        if has_ar:
            from scipy.signal import lfilter

            innovations = z[:, pos : pos + n]
            ar_seeds = z[:, pos + n]
            innovations *= self.ar_sigma_v * np.sqrt(1.0 - self.ar_coeff**2)
            innovations[:, 0] = self.ar_sigma_v * ar_seeds
            ar = lfilter([1.0], [1.0, -self.ar_coeff], innovations, axis=1)
            if noise is None:
                noise = ar
            else:
                noise += ar  # in-place: same ufunc, same bytes, no copy
        if noise is None:
            noise = np.zeros((n_rows, n))
        return baselines, gains, noise


#: Noise of a bench-grade digitizer chain on a quiet bus.
QUIET_CHANNEL = ChannelNoise(
    white_sigma_v=0.004,
    ar_sigma_v=0.003,
    ar_coeff=0.9,
    baseline_sigma_v=0.008,
    amplitude_jitter=0.001,
)

#: Noise of an in-vehicle capture while driving (Vehicle B conditions):
#: the dominating term is slow per-message baseline wander from shifting
#: loads, while the sample-level noise floor stays moderate.
NOISY_CHANNEL = ChannelNoise(
    white_sigma_v=0.004,
    ar_sigma_v=0.0035,
    ar_coeff=0.94,
    baseline_sigma_v=0.017,
    amplitude_jitter=0.003,
)
