"""Bus channel noise model.

The measured CAN voltage is the transceiver's ideal output plus several
noise processes with very different structure:

* **White measurement noise** — digitizer front-end noise, independent
  per sample.
* **Correlated (AR(1)) noise** — supply ripple and EMI filtered by the
  bus; neighbouring samples are correlated, which is precisely the
  structure the Mahalanobis covariance matrix exploits (Section 4.2.2).
* **Per-message baseline wander** — slow common-mode drift; constant
  within one message but varying between messages.  This inflates the
  Euclidean intra-cluster spread without helping discrimination, and is
  one of the two mechanisms (with edge jitter) behind the Euclidean
  metric's failures in Tables 4.1-4.2.
* **Per-message amplitude jitter** — small relative gain variation of
  the dominant drive (driver supply ripple).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WaveformError


@dataclass(frozen=True)
class ChannelNoise:
    """Noise amplitudes for a capture chain, all in volts (or relative).

    Attributes
    ----------
    white_sigma_v:
        Standard deviation of per-sample white Gaussian noise.
    ar_sigma_v:
        Stationary standard deviation of the AR(1) correlated component.
    ar_coeff:
        AR(1) pole; 0 disables correlation, values near 1 give slow noise.
    baseline_sigma_v:
        Standard deviation of the per-message common-mode offset.
    amplitude_jitter:
        Relative standard deviation of the per-message dominant-level
        gain factor.
    """

    white_sigma_v: float = 0.008
    ar_sigma_v: float = 0.005
    ar_coeff: float = 0.92
    baseline_sigma_v: float = 0.018
    amplitude_jitter: float = 0.002

    def __post_init__(self) -> None:
        for field_name in ("white_sigma_v", "ar_sigma_v", "baseline_sigma_v", "amplitude_jitter"):
            if getattr(self, field_name) < 0:
                raise WaveformError(f"{field_name} must be non-negative")
        if not 0.0 <= self.ar_coeff < 1.0:
            raise WaveformError(f"ar_coeff must be in [0, 1), got {self.ar_coeff}")

    def sample_message_offsets(self, rng: np.random.Generator) -> tuple[float, float]:
        """Draw the per-message (baseline offset, amplitude gain) pair."""
        baseline = float(rng.normal(0.0, self.baseline_sigma_v)) if self.baseline_sigma_v else 0.0
        gain = 1.0 + (float(rng.normal(0.0, self.amplitude_jitter)) if self.amplitude_jitter else 0.0)
        return baseline, gain

    def sample_noise(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the per-sample noise vector (white + AR(1)) for one message."""
        noise = np.zeros(n_samples)
        if self.white_sigma_v:
            noise += rng.normal(0.0, self.white_sigma_v, size=n_samples)
        if self.ar_sigma_v and n_samples:
            from scipy.signal import lfilter

            innovation_sigma = self.ar_sigma_v * np.sqrt(1.0 - self.ar_coeff**2)
            innovations = rng.normal(0.0, innovation_sigma, size=n_samples)
            # Seed the recursion at the stationary distribution so the
            # first samples of a message are not artificially quiet.
            innovations[0] = rng.normal(0.0, self.ar_sigma_v)
            ar = lfilter([1.0], [1.0, -self.ar_coeff], innovations)
            noise += ar
        return noise


#: Noise of a bench-grade digitizer chain on a quiet bus.
QUIET_CHANNEL = ChannelNoise(
    white_sigma_v=0.004,
    ar_sigma_v=0.003,
    ar_coeff=0.9,
    baseline_sigma_v=0.008,
    amplitude_jitter=0.001,
)

#: Noise of an in-vehicle capture while driving (Vehicle B conditions):
#: the dominating term is slow per-message baseline wander from shifting
#: loads, while the sample-level noise floor stays moderate.
NOISY_CHANNEL = ChannelNoise(
    white_sigma_v=0.004,
    ar_sigma_v=0.0035,
    ar_coeff=0.94,
    baseline_sigma_v=0.017,
    amplitude_jitter=0.003,
)
