"""Operating-environment model: temperature and battery voltage.

Section 4.4 of the paper shows that ECU temperature and battery voltage
shift the CAN bus voltage enough to move Mahalanobis distances by tens of
percent.  This module captures the environment as a value object and the
per-ECU sensitivity coefficients live in the transceiver model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Nominal conditions used when a caller does not care about environment.
NOMINAL_TEMPERATURE_C = 25.0
NOMINAL_BATTERY_V = 13.6


@dataclass(frozen=True)
class Environment:
    """Vehicle operating conditions during a capture.

    Attributes
    ----------
    temperature_c:
        ECU-compartment temperature in degrees Celsius.  The paper's
        temperature sweep runs from -5 degC to 25 degC (Section 4.4.1).
    battery_v:
        Battery / supply voltage.  About 12.6 V in accessory mode and
        13.6 V with the engine running and the alternator charging
        (Section 4.4.2).
    load_current_a:
        Aggregate high-power accessory load (lights, A/C) in amperes.
        Used to model the small bus-voltage sag the paper observed when
        both the lights and A/C were running.
    """

    temperature_c: float = NOMINAL_TEMPERATURE_C
    battery_v: float = NOMINAL_BATTERY_V
    load_current_a: float = 0.0

    def with_temperature(self, temperature_c: float) -> "Environment":
        """Return a copy at a different temperature."""
        return replace(self, temperature_c=temperature_c)

    def with_battery(self, battery_v: float) -> "Environment":
        """Return a copy at a different battery voltage."""
        return replace(self, battery_v=battery_v)

    def with_load(self, load_current_a: float) -> "Environment":
        """Return a copy with a different accessory load."""
        return replace(self, load_current_a=load_current_a)


NOMINAL_ENVIRONMENT = Environment()

#: Environments matching the paper's battery-voltage experiment events
#: (Section 4.4.2): accessory mode ~12.6 V, engine running ~13.6 V, with
#: rough current draws for the switched loads.
ACCESSORY_MODE = Environment(temperature_c=28.4, battery_v=12.61)
ACCESSORY_LIGHTS = Environment(temperature_c=28.4, battery_v=12.58, load_current_a=18.0)
ACCESSORY_AC = Environment(temperature_c=28.4, battery_v=12.56, load_current_a=25.0)
ACCESSORY_LIGHTS_AC = Environment(temperature_c=28.4, battery_v=12.54, load_current_a=43.0)
ENGINE_RUNNING = Environment(temperature_c=28.4, battery_v=13.60, load_current_a=0.0)
